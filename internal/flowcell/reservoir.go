package flowcell

import (
	"errors"
	"fmt"

	"bright/internal/num"
	"bright/internal/units"
)

// Reservoir tracks the electrolyte inventory feeding an array. Redox
// flow cells are secondary batteries that store energy in the
// electrolyte (paper Section II: "the independent dimensioning of
// energy storage capacity (size of electrolyte reservoir) and power
// density"); discharging converts the charged species (anode Red,
// cathode Ox) into their counterparts, shifting the Nernst potentials
// and eventually starving the cell.
type Reservoir struct {
	// Volume is the electrolyte volume per half-cell reservoir (m3);
	// both sides are sized equally, the standard symmetric design.
	Volume float64
	// AnodeOx/AnodeRed and CathodeOx/CathodeRed are the current molar
	// inventories divided by Volume (mol/m3), i.e. the instantaneous
	// reservoir concentrations. Initialize from the array's inlet spec
	// via NewReservoir.
	AnodeOx, AnodeRed     float64
	CathodeOx, CathodeRed float64
}

// NewReservoir creates a fully mixed reservoir of the given per-side
// volume (m3) holding the array's inlet electrolyte state.
func NewReservoir(a *Array, volume float64) (*Reservoir, error) {
	if volume <= 0 {
		return nil, fmt.Errorf("flowcell: nonpositive reservoir volume %g", volume)
	}
	if err := a.Validate(); err != nil {
		return nil, err
	}
	return &Reservoir{
		Volume:     volume,
		AnodeOx:    a.Cell.Anode.COxInlet,
		AnodeRed:   a.Cell.Anode.CRedInlet,
		CathodeOx:  a.Cell.Cathode.COxInlet,
		CathodeRed: a.Cell.Cathode.CRedInlet,
	}, nil
}

// StateOfCharge returns the limiting state of charge in [0, 1]: the
// lesser of the anode fuel fraction and the cathode oxidant fraction.
func (r *Reservoir) StateOfCharge() float64 {
	socA := r.AnodeRed / (r.AnodeRed + r.AnodeOx)
	socC := r.CathodeOx / (r.CathodeOx + r.CathodeRed)
	if socA < socC {
		return socA
	}
	return socC
}

// applyTo writes the reservoir state into the array's inlet spec,
// flooring trace species at 1 mol/m3 (as Table II does).
func (r *Reservoir) applyTo(a *Array) {
	floor := func(c float64) float64 {
		if c < 1 {
			return 1
		}
		return c
	}
	a.Cell.Anode.COxInlet = floor(r.AnodeOx)
	a.Cell.Anode.CRedInlet = floor(r.AnodeRed)
	a.Cell.Cathode.COxInlet = floor(r.CathodeOx)
	a.Cell.Cathode.CRedInlet = floor(r.CathodeRed)
}

// drain converts charge Q (coulombs) of discharge: the anode oxidizes
// Red -> Ox, the cathode reduces Ox -> Red.
func (r *Reservoir) drain(q float64, n int) {
	dmol := q / (float64(n) * units.Faraday) / r.Volume
	r.AnodeRed -= dmol
	r.AnodeOx += dmol
	r.CathodeOx -= dmol
	r.CathodeRed += dmol
}

// DischargePoint is one sampled instant of a constant-voltage
// discharge.
type DischargePoint struct {
	TimeS    float64
	SOC      float64
	CurrentA float64
	PowerW   float64
	OCV      float64
}

// DischargeResult summarizes a constant-voltage discharge run.
type DischargeResult struct {
	Points []DischargePoint
	// CapacityAh is the charge delivered until cutoff.
	CapacityAh float64
	// EnergyWh is the electric energy delivered.
	EnergyWh float64
	// EnergyDensityWhPerL references the energy to the *total*
	// electrolyte volume (both reservoirs).
	EnergyDensityWhPerL float64
	// CutoffSOC is the state of charge at termination.
	CutoffSOC float64
	// DurationS is the discharge time until cutoff.
	DurationS float64
}

// ErrDepleted is returned (wrapped) when the reservoir can no longer
// sustain the requested terminal voltage.
var ErrDepleted = errors.New("flowcell: reservoir depleted")

// DischargeConstantVoltage drains the reservoir through the array at a
// fixed terminal voltage, stepping dt seconds up to maxSteps, stopping
// when the state of charge reaches socCutoff or the cell can no longer
// hold the voltage. The array's inlet concentrations are updated from
// the (well mixed) reservoir each step — the quasi-static approximation
// valid when the loop circulation time is short against the discharge
// time, as it is for any practical reservoir.
func (r *Reservoir) DischargeConstantVoltage(a *Array, voltage, dt, socCutoff float64, maxSteps int) (*DischargeResult, error) {
	if dt <= 0 || maxSteps <= 0 {
		return nil, fmt.Errorf("flowcell: invalid discharge stepping dt=%g steps=%d", dt, maxSteps)
	}
	if socCutoff <= 0 || socCutoff >= 1 {
		return nil, fmt.Errorf("flowcell: SOC cutoff %g out of (0,1)", socCutoff)
	}
	work := *a // shallow copy; we mutate inlet concentrations only
	res := &DischargeResult{}
	var charge, energy float64
	for step := 0; step < maxSteps; step++ {
		r.applyTo(&work)
		soc := r.StateOfCharge()
		if soc <= socCutoff {
			break
		}
		op, err := work.CurrentAtVoltage(voltage)
		if err != nil {
			if errors.Is(err, ErrBeyondLimit) {
				break // voltage no longer sustainable: natural cutoff
			}
			return nil, err
		}
		if op.Current <= 0 {
			break // OCV fell to the terminal voltage
		}
		ocv, err := work.Cell.OpenCircuitVoltage()
		if err != nil {
			return nil, err
		}
		res.Points = append(res.Points, DischargePoint{
			TimeS:    float64(step) * dt,
			SOC:      soc,
			CurrentA: op.Current,
			PowerW:   op.Power,
			OCV:      ocv,
		})
		r.drain(op.Current*dt, work.Cell.Anode.Couple.N)
		charge += op.Current * dt
		energy += op.Power * dt
		res.DurationS = float64(step+1) * dt
	}
	if len(res.Points) == 0 {
		return nil, fmt.Errorf("%w: no dischargeable state at %g V", ErrDepleted, voltage)
	}
	res.CapacityAh = charge / 3600
	res.EnergyWh = energy / 3600
	res.EnergyDensityWhPerL = res.EnergyWh / (2 * r.Volume * 1000)
	res.CutoffSOC = r.StateOfCharge()
	return res, nil
}

// TheoreticalCapacityAh returns the charge stored in the limiting
// reservoir at its current state (Ah), the n F C V bound the discharge
// can approach but not exceed.
func (r *Reservoir) TheoreticalCapacityAh(n int) float64 {
	limiting := r.AnodeRed
	if r.CathodeOx < limiting {
		limiting = r.CathodeOx
	}
	return float64(n) * units.Faraday * limiting * r.Volume / 3600
}

// DischargeRK4 integrates the same constant-voltage discharge with a
// fourth-order Runge-Kutta scheme on the species state instead of the
// forward-Euler stepping of DischargeConstantVoltage. The two must
// agree as dt shrinks; the tests use this as a cross-check of the
// integrator-independent physics. dtChunk is the reporting interval;
// each chunk is integrated with 4 internal RK4 stages.
func (r *Reservoir) DischargeRK4(a *Array, voltage, dtChunk, socCutoff float64, maxChunks int) (*DischargeResult, error) {
	if dtChunk <= 0 || maxChunks <= 0 {
		return nil, fmt.Errorf("flowcell: invalid RK4 discharge stepping")
	}
	if socCutoff <= 0 || socCutoff >= 1 {
		return nil, fmt.Errorf("flowcell: SOC cutoff %g out of (0,1)", socCutoff)
	}
	work := *a
	nEl := work.Cell.Anode.Couple.N
	res := &DischargeResult{}
	var charge, energy float64
	currentOf := func(state [4]float64) (float64, error) {
		rr := *r
		rr.AnodeOx, rr.AnodeRed, rr.CathodeOx, rr.CathodeRed = state[0], state[1], state[2], state[3]
		rr.applyTo(&work)
		op, err := work.CurrentAtVoltage(voltage)
		if err != nil {
			return 0, err
		}
		return op.Current, nil
	}
	deriv := func(t float64, y, dydt []float64) {
		i, err := currentOf([4]float64{y[0], y[1], y[2], y[3]})
		if err != nil {
			i = 0 // depleted: discharge stalls
		}
		dmol := i / (float64(nEl) * units.Faraday) / r.Volume
		dydt[0] = +dmol // anode Ox produced
		dydt[1] = -dmol // anode Red consumed
		dydt[2] = -dmol // cathode Ox consumed
		dydt[3] = +dmol // cathode Red produced
	}
	state := []float64{r.AnodeOx, r.AnodeRed, r.CathodeOx, r.CathodeRed}
	for chunk := 0; chunk < maxChunks; chunk++ {
		r.AnodeOx, r.AnodeRed, r.CathodeOx, r.CathodeRed = state[0], state[1], state[2], state[3]
		soc := r.StateOfCharge()
		if soc <= socCutoff {
			break
		}
		i, err := currentOf([4]float64{state[0], state[1], state[2], state[3]})
		if err != nil || i <= 0 {
			break
		}
		ocv := 0.0
		r.applyTo(&work)
		if ocv, err = work.Cell.OpenCircuitVoltage(); err != nil {
			return nil, err
		}
		res.Points = append(res.Points, DischargePoint{
			TimeS: float64(chunk) * dtChunk, SOC: soc, CurrentA: i,
			PowerW: i * voltage, OCV: ocv,
		})
		t0 := float64(chunk) * dtChunk
		next, err := num.RK4(deriv, state, t0, t0+dtChunk, 4)
		if err != nil {
			return nil, err
		}
		// Trapezoidal charge accounting over the chunk.
		iNext, errNext := currentOf([4]float64{next[0], next[1], next[2], next[3]})
		if errNext != nil {
			iNext = 0
		}
		charge += 0.5 * (i + iNext) * dtChunk
		energy += 0.5 * (i + iNext) * dtChunk * voltage
		state = next
		res.DurationS = t0 + dtChunk
	}
	r.AnodeOx, r.AnodeRed, r.CathodeOx, r.CathodeRed = state[0], state[1], state[2], state[3]
	if len(res.Points) == 0 {
		return nil, fmt.Errorf("%w: no dischargeable state at %g V", ErrDepleted, voltage)
	}
	res.CapacityAh = charge / 3600
	res.EnergyWh = energy / 3600
	res.EnergyDensityWhPerL = res.EnergyWh / (2 * r.Volume * 1000)
	res.CutoffSOC = r.StateOfCharge()
	return res, nil
}
