package flowcell

import (
	"math"
	"testing"

	"bright/internal/units"
)

func approx(t *testing.T, got, want, rel float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > rel*math.Abs(want) {
		t.Errorf("%s: got %g want %g (rel tol %g)", msg, got, want, rel)
	}
}

func TestKjeangCellGeometry(t *testing.T) {
	c := KjeangCell(60)
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	// Electrode area = height x length = 150um x 33mm.
	approx(t, c.GeometricElectrodeArea(), 150e-6*33e-3, 1e-12, "electrode area")
	approx(t, c.StreamWidth(), 1e-3, 1e-12, "stream half-width")
	// Mean velocity: 2 streams x 60 uL/min over the 2mm x 150um section.
	wantV := 2 * units.ULPerMinToM3PerS(60) / (2e-3 * 150e-6)
	approx(t, c.MeanVelocity(), wantV, 1e-12, "mean velocity")
	// Shear develops across the 150 um etch depth (Hele-Shaw).
	approx(t, c.shearGap(), 150e-6, 1e-12, "shear gap")
}

func TestPower7CellGeometry(t *testing.T) {
	a := Power7Array()
	if err := a.Validate(); err != nil {
		t.Fatal(err)
	}
	c := a.Cell
	approx(t, c.GeometricElectrodeArea(), 400e-6*22e-3, 1e-12, "electrode area")
	// 88 channels, total 676 ml/min -> per-channel velocity ~1.6 m/s
	// (the paper rounds to 1.4 m/s).
	v := c.MeanVelocity()
	if v < 1.3 || v > 1.8 {
		t.Fatalf("mean velocity %g outside Table II ballpark", v)
	}
	// Shear develops across the 200 um gap.
	approx(t, c.shearGap(), 200e-6, 1e-12, "shear gap")
	approx(t, a.TotalFlowRate(), units.MLPerMinToM3PerS(676), 1e-9, "total flow")
	approx(t, a.TotalGeometricElectrodeArea(), 88*400e-6*22e-3, 1e-12, "array area")
}

func TestCellOCV(t *testing.T) {
	// Kjeang cell: Nernst OCV ~1.43 V at Table I inlet state.
	ocv, err := KjeangCell(60).OpenCircuitVoltage()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, ocv, 1.433, 0.005, "Kjeang OCV")
	// Power7 array: ~1.65 V (the Fig. 7 intercept).
	ocv7, err := Power7Array().Cell.OpenCircuitVoltage()
	if err != nil {
		t.Fatal(err)
	}
	approx(t, ocv7, 1.648, 0.01, "Table II OCV")
}

func TestValidationRejects(t *testing.T) {
	mutations := []func(*Cell){
		func(c *Cell) { c.Channel.Width = 0 },
		func(c *Cell) { c.StreamFlowRate = 0 },
		func(c *Cell) { c.Temperature = -1 },
		func(c *Cell) { c.ContactASR = -1 },
		func(c *Cell) { c.AreaEnhancement = 0.5 },
		func(c *Cell) { c.Anode.COxInlet = 0 },
		func(c *Cell) { c.Cathode.CRedInlet = -3 },
		func(c *Cell) { c.Anode.Couple.Alpha = 0 },
		func(c *Cell) { c.Electrolyte.ConductivityRef = 0 },
	}
	for k, mutate := range mutations {
		c := KjeangCell(60)
		mutate(c)
		if err := c.Validate(); err == nil {
			t.Errorf("mutation %d: expected validation error", k)
		}
	}
}

func TestLimitingCurrentScalesWithFlowCubeRoot(t *testing.T) {
	iL1 := KjeangCell(2.5).LimitingCurrent()
	iL2 := KjeangCell(300).LimitingCurrent()
	// Leveque: iL ~ Q^(1/3); 120x flow -> 4.93x current.
	approx(t, iL2/iL1, math.Cbrt(300/2.5), 0.02, "Q^(1/3) limiting current")
}

func TestCathodeLimitsKjeangCell(t *testing.T) {
	// With Table I data the cathode (D=1.3e-10, COx=992) has a slightly
	// lower limiting current than the anode (D=1.7e-10, CRed=920).
	c := KjeangCell(60)
	a := c.halfState(c.Anode).LimitingCurrentDensity(0) // oxidation
	k := c.halfState(c.Cathode).LimitingCurrentDensity(1)
	if k >= a {
		t.Fatalf("expected cathode to limit: anode %g, cathode %g", a, k)
	}
}

func TestCrossoverNegligible(t *testing.T) {
	// The membraneless design premise: reactant crossover reaching the
	// opposite electrode is negligible at every paper condition.
	for _, q := range KjeangFlowRatesULMin {
		c := KjeangCell(q)
		if x := c.CrossoverCurrent(); x > 1e-4*c.LimitingCurrent() {
			t.Errorf("Kjeang %g uL/min: crossover %g A not negligible", q, x)
		}
	}
	p := Power7Array().Cell
	if x := p.CrossoverCurrent(); x > 1e-4*p.LimitingCurrent() {
		t.Errorf("Power7: crossover %g A not negligible", x)
	}
}

func TestOhmicASR(t *testing.T) {
	c := KjeangCell(60)
	// Ionic path = 2 mm gap at sigma(25C) ~ 39.7 S/m, plus 2.5 ohm.cm2
	// contact.
	sigma := c.Electrolyte.Conductivity(c.Temperature)
	approx(t, c.OhmicASR(), 2e-3/sigma+2.5e-4, 1e-12, "ASR decomposition")
	// Hotter electrolyte conducts better -> lower ASR.
	hot := *c
	hot.Temperature = 320
	if hot.OhmicASR() >= c.OhmicASR() {
		t.Fatal("ASR must fall with temperature")
	}
}

func TestHeatDissipation(t *testing.T) {
	c := KjeangCell(60)
	op, err := c.VoltageAtCurrent(0.5 * c.LimitingCurrent())
	if err != nil {
		t.Fatal(err)
	}
	q, err := c.HeatDissipation(op.Current, op.Voltage)
	if err != nil {
		t.Fatal(err)
	}
	// Heat = I*(OCV-V) > 0 and complements electrical power: total
	// chemical power = I*OCV.
	if q <= 0 {
		t.Fatalf("heat %g must be positive under load", q)
	}
	approx(t, q+op.Power, op.Current*op.OpenCircuit, 1e-9, "energy balance")
	// Open circuit: no heat.
	q0, err := c.HeatDissipation(0, op.OpenCircuit)
	if err != nil || q0 != 0 {
		t.Fatalf("open-circuit heat %g err %v", q0, err)
	}
}

func TestKmTemperatureSensitivity(t *testing.T) {
	// km must increase with temperature via D(T) — the transport half
	// of the paper's hot-operation gain.
	c := KjeangCell(60)
	d1 := c.Anode.Couple.DRed(300)
	d2 := c.Anode.Couple.DRed(310)
	r := c.KmAvg(d2) / c.KmAvg(d1)
	approx(t, r, math.Pow(d2/d1, 2.0/3.0), 1e-9, "km ~ D^(2/3)")
	if r <= 1.1 {
		t.Fatalf("10 K should boost km by >10%%, got %g", r)
	}
}
