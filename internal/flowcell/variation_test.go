package flowcell

import (
	"math"
	"testing"
)

func TestVariationZeroSigmaIsExact(t *testing.T) {
	a := Power7Array()
	res, err := a.MonteCarloVariation(1.0, 0, 5, 1)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.MeanA-res.NominalA) > 1e-6*res.NominalA {
		t.Fatalf("zero-sigma mean %g != nominal %g", res.MeanA, res.NominalA)
	}
	if res.StdA > 1e-9 {
		t.Fatalf("zero-sigma std %g", res.StdA)
	}
}

func TestVariationGrowsWithSigma(t *testing.T) {
	a := Power7Array()
	r2, err := a.MonteCarloVariation(1.0, 0.02, 40, 42)
	if err != nil {
		t.Fatal(err)
	}
	r10, err := a.MonteCarloVariation(1.0, 0.10, 40, 42)
	if err != nil {
		t.Fatal(err)
	}
	if r10.StdA <= r2.StdA {
		t.Fatalf("spread must grow with sigma: %g vs %g", r10.StdA, r2.StdA)
	}
	// The array averages 88 channels: even 10% per-channel tolerance
	// leaves the total within ~5% of nominal (central limit), the
	// robustness argument for many parallel channels.
	if rel := r10.StdA / r10.NominalA; rel > 0.05 {
		t.Fatalf("relative spread %.3f too large for an 88-channel array", rel)
	}
	// The systematic (Jensen) bias is negative and small.
	if r10.MeanShiftPct > 0.1 || r10.MeanShiftPct < -3 {
		t.Fatalf("mean shift %.2f%% outside expectation", r10.MeanShiftPct)
	}
}

func TestVariationDeterministicSeed(t *testing.T) {
	a := Power7Array()
	r1, err := a.MonteCarloVariation(1.0, 0.05, 15, 7)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := a.MonteCarloVariation(1.0, 0.05, 15, 7)
	if err != nil {
		t.Fatal(err)
	}
	if r1.MeanA != r2.MeanA || r1.WorstA != r2.WorstA {
		t.Fatal("same seed must reproduce the same statistics")
	}
	r3, err := a.MonteCarloVariation(1.0, 0.05, 15, 8)
	if err != nil {
		t.Fatal(err)
	}
	if r1.MeanA == r3.MeanA {
		t.Fatal("different seeds should differ")
	}
}

func TestVariationOrderStatistics(t *testing.T) {
	a := Power7Array()
	res, err := a.MonteCarloVariation(1.0, 0.08, 60, 3)
	if err != nil {
		t.Fatal(err)
	}
	if !(res.WorstA <= res.P05A && res.P05A <= res.MeanA) {
		t.Fatalf("order statistics inconsistent: worst %g, p05 %g, mean %g",
			res.WorstA, res.P05A, res.MeanA)
	}
}

func TestVariationArgs(t *testing.T) {
	a := Power7Array()
	if _, err := a.MonteCarloVariation(1.0, -0.1, 10, 1); err == nil {
		t.Fatal("negative sigma accepted")
	}
	if _, err := a.MonteCarloVariation(1.0, 0.5, 10, 1); err == nil {
		t.Fatal("huge sigma accepted")
	}
	if _, err := a.MonteCarloVariation(1.0, 0.05, 1, 1); err == nil {
		t.Fatal("single sample accepted")
	}
	bad := *a
	bad.NChannels = 0
	if _, err := bad.MonteCarloVariation(1.0, 0.05, 10, 1); err == nil {
		t.Fatal("invalid array accepted")
	}
}
