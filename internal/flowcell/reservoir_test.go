package flowcell

import (
	"math"
	"testing"
)

func testReservoir(t *testing.T, volume float64) (*Array, *Reservoir) {
	t.Helper()
	a := Power7Array()
	r, err := NewReservoir(a, volume)
	if err != nil {
		t.Fatal(err)
	}
	return a, r
}

func TestReservoirInitialState(t *testing.T) {
	_, r := testReservoir(t, 1e-4) // 100 ml per side
	// Table II: fully charged 2000:1.
	if soc := r.StateOfCharge(); soc < 0.999 {
		t.Fatalf("fresh SOC %g", soc)
	}
	// Theoretical capacity: F * 2000 mol/m3 * 1e-4 m3 / 3600 ~ 5.36 Ah.
	capAh := r.TheoreticalCapacityAh(1)
	if math.Abs(capAh-5.36) > 0.05 {
		t.Fatalf("theoretical capacity %g Ah", capAh)
	}
}

func TestNewReservoirValidation(t *testing.T) {
	a := Power7Array()
	if _, err := NewReservoir(a, 0); err == nil {
		t.Fatal("zero volume accepted")
	}
	bad := *a
	bad.NChannels = 0
	if _, err := NewReservoir(&bad, 1e-4); err == nil {
		t.Fatal("invalid array accepted")
	}
}

func TestDischargeConservesCharge(t *testing.T) {
	a, r := testReservoir(t, 2e-5) // 20 ml per side: short discharge
	res, err := r.DischargeConstantVoltage(a, 1.0, 5.0, 0.1, 100000)
	if err != nil {
		t.Fatal(err)
	}
	// Delivered charge cannot exceed the initial theoretical capacity.
	initialAh := 96485.33212 * 2000 * 2e-5 / 3600
	if res.CapacityAh > initialAh {
		t.Fatalf("delivered %g Ah exceeds theoretical %g Ah", res.CapacityAh, initialAh)
	}
	// But a healthy discharge extracts most of it (down to 10% SOC).
	if res.CapacityAh < 0.5*initialAh {
		t.Fatalf("delivered %g Ah too little of %g Ah", res.CapacityAh, initialAh)
	}
	// Charge bookkeeping: SOC fell to near the cutoff.
	if res.CutoffSOC > 0.2 {
		t.Fatalf("terminated at SOC %g, expected near cutoff", res.CutoffSOC)
	}
	// Energy ~ capacity * ~1 V at the terminal.
	whExpected := res.CapacityAh * 1.0
	if math.Abs(res.EnergyWh-whExpected) > 0.02*whExpected {
		t.Fatalf("energy %g Wh vs V*Q %g Wh", res.EnergyWh, whExpected)
	}
}

func TestDischargeCurrentSags(t *testing.T) {
	a, r := testReservoir(t, 2e-5)
	res, err := r.DischargeConstantVoltage(a, 1.0, 5.0, 0.1, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Points) < 10 {
		t.Fatalf("too few samples: %d", len(res.Points))
	}
	first, last := res.Points[0], res.Points[len(res.Points)-1]
	// At constant terminal voltage, current and OCV sag as the
	// reservoir discharges.
	if last.CurrentA >= first.CurrentA {
		t.Fatalf("current did not sag: %g -> %g", first.CurrentA, last.CurrentA)
	}
	if last.OCV >= first.OCV {
		t.Fatalf("OCV did not sag: %g -> %g", first.OCV, last.OCV)
	}
	// SOC is monotone decreasing.
	for k := 1; k < len(res.Points); k++ {
		if res.Points[k].SOC >= res.Points[k-1].SOC {
			t.Fatalf("SOC not decreasing at %d", k)
		}
	}
	// Fresh reservoir starts at the Fig. 7 operating point.
	if math.Abs(first.CurrentA-6.1) > 0.7 {
		t.Fatalf("initial current %g A far from the Fig. 7 point", first.CurrentA)
	}
}

func TestEnergyDensityPlausible(t *testing.T) {
	a, r := testReservoir(t, 2e-5)
	res, err := r.DischargeConstantVoltage(a, 1.0, 5.0, 0.1, 100000)
	if err != nil {
		t.Fatal(err)
	}
	// Vanadium systems deliver ~15-35 Wh/L of total electrolyte at
	// practical depths of discharge; at 2 M and a 1.0 V terminal we
	// land toward the lower-middle of that band.
	if res.EnergyDensityWhPerL < 8 || res.EnergyDensityWhPerL > 40 {
		t.Fatalf("energy density %g Wh/L outside vanadium band", res.EnergyDensityWhPerL)
	}
}

func TestDischargeValidation(t *testing.T) {
	a, r := testReservoir(t, 1e-5)
	if _, err := r.DischargeConstantVoltage(a, 1.0, 0, 0.1, 10); err == nil {
		t.Fatal("zero dt accepted")
	}
	if _, err := r.DischargeConstantVoltage(a, 1.0, 1, 0.1, 0); err == nil {
		t.Fatal("zero steps accepted")
	}
	if _, err := r.DischargeConstantVoltage(a, 1.0, 1, 1.5, 10); err == nil {
		t.Fatal("bad cutoff accepted")
	}
	// A voltage above OCV cannot discharge.
	if _, err := r.DischargeConstantVoltage(a, 2.0, 1, 0.1, 10); err == nil {
		t.Fatal("super-OCV discharge accepted")
	}
}

func TestDischargeDoesNotMutateArray(t *testing.T) {
	a, r := testReservoir(t, 1e-5)
	before := a.Cell.Anode
	if _, err := r.DischargeConstantVoltage(a, 1.0, 10, 0.2, 10000); err != nil {
		t.Fatal(err)
	}
	if a.Cell.Anode != before {
		t.Fatal("discharge mutated the caller's array")
	}
}

func TestDischargeRK4MatchesEuler(t *testing.T) {
	aE, rE := testReservoir(t, 2e-5)
	euler, err := rE.DischargeConstantVoltage(aE, 1.0, 2.0, 0.2, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	aR, rR := testReservoir(t, 2e-5)
	rk, err := rR.DischargeRK4(aR, 1.0, 20.0, 0.2, 1_000_000)
	if err != nil {
		t.Fatal(err)
	}
	// Independent integrators, same physics: capacities within 2%.
	if d := math.Abs(rk.CapacityAh-euler.CapacityAh) / euler.CapacityAh; d > 0.02 {
		t.Fatalf("RK4 %.4f Ah vs Euler %.4f Ah (%.1f%%)", rk.CapacityAh, euler.CapacityAh, 100*d)
	}
	if d := math.Abs(rk.EnergyWh-euler.EnergyWh) / euler.EnergyWh; d > 0.02 {
		t.Fatalf("RK4 %.4f Wh vs Euler %.4f Wh", rk.EnergyWh, euler.EnergyWh)
	}
	// RK4 with 10x coarser reporting still resolves the sag.
	if len(rk.Points) < 10 {
		t.Fatalf("RK4 points %d", len(rk.Points))
	}
}

func TestDischargeRK4Validation(t *testing.T) {
	a, r := testReservoir(t, 1e-5)
	if _, err := r.DischargeRK4(a, 1.0, 0, 0.1, 10); err == nil {
		t.Fatal("zero chunk accepted")
	}
	if _, err := r.DischargeRK4(a, 1.0, 1, 2, 10); err == nil {
		t.Fatal("bad cutoff accepted")
	}
	if _, err := r.DischargeRK4(a, 2.0, 1, 0.1, 10); err == nil {
		t.Fatal("super-OCV voltage accepted")
	}
}
