package flowcell

import (
	"math"
	"testing"

	"bright/internal/units"
)

func TestPower7ArrayHeadline(t *testing.T) {
	// Paper Fig. 7: "at a supply voltage of 1 V, the proposed
	// microfluidic flow cell array can provide a current of 6 A".
	a := Power7Array()
	op, err := a.CurrentAtVoltage(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op.Current-6.0) > 0.9 {
		t.Fatalf("I(1.0 V) = %.2f A, paper says 6 A (+-15%%)", op.Current)
	}
	// That is >= the 5 A the caches need and >= 6 W of power
	// (the paper's "up to 6 W" claim).
	if op.Power < 5.0 {
		t.Fatalf("array power %.2f W below cache demand", op.Power)
	}
}

func TestPower7ArrayOCV(t *testing.T) {
	// Fig. 7 voltage intercept ~1.6-1.7 V.
	a := Power7Array()
	curve, err := a.Polarize(5, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if curve[0].Voltage < 1.55 || curve[0].Voltage > 1.75 {
		t.Fatalf("array OCV %.3f outside Fig. 7 intercept band", curve[0].Voltage)
	}
}

func TestArrayScalesChannelCount(t *testing.T) {
	// Doubling channels at fixed per-channel flow doubles current at
	// any voltage.
	base := Power7Array()
	double := &Array{Cell: base.Cell, NChannels: 176}
	op1, err := base.CurrentAtVoltage(1.1)
	if err != nil {
		t.Fatal(err)
	}
	op2, err := double.CurrentAtVoltage(1.1)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, op2.Current, 2*op1.Current, 1e-6, "current scales with channels")
	approx(t, op2.Power, 2*op1.Power, 1e-6, "power scales with channels")
}

func TestArrayVoltageAtCurrentMatchesCell(t *testing.T) {
	a := Power7Array()
	op, err := a.VoltageAtCurrent(4.4)
	if err != nil {
		t.Fatal(err)
	}
	cellOp, err := a.Cell.VoltageAtCurrent(4.4 / 88)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, op.Voltage, cellOp.Voltage, 1e-12, "array voltage == cell voltage")
	approx(t, op.Current, 4.4, 1e-12, "array current preserved")
}

func TestArrayPolarizeMonotone(t *testing.T) {
	a := Power7Array()
	curve, err := a.Polarize(25, 0.97)
	if err != nil {
		t.Fatal(err)
	}
	if !curve.IsMonotoneDecreasing() {
		t.Fatal("array V-I not monotone")
	}
	// The limiting current must comfortably exceed the 5-6 A demand.
	if lim := a.LimitingCurrent(); lim < 6.0 {
		t.Fatalf("array limiting current %.2f A below demand", lim)
	}
}

func TestArrayHydraulics(t *testing.T) {
	// Section III-B: pumping power at Table II flow with a 50% pump.
	a := Power7Array()
	net := a.HydraulicNetwork(1.5, 0.5)
	rep, err := net.Evaluate(a.TotalFlowRate())
	if err != nil {
		t.Fatal(err)
	}
	// Our self-consistent laminar hydraulics give ~0.4-1.5 W (the paper
	// quotes 4.4 W from a 1.5 bar/cm gradient that is not reproducible
	// from its own Table II geometry; see EXPERIMENTS.md).
	if rep.PumpPower <= 0 || rep.PumpPower > 5 {
		t.Fatalf("pump power %.2f W outside plausible range", rep.PumpPower)
	}
	// The net energy balance of the paper's claim: generation (~6 W)
	// must exceed pumping.
	op, err := a.CurrentAtVoltage(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if op.Power <= rep.PumpPower {
		t.Fatalf("generated %.2f W must exceed pumping %.2f W", op.Power, rep.PumpPower)
	}
}

func TestArrayHeat(t *testing.T) {
	a := Power7Array()
	op, err := a.CurrentAtVoltage(1.0)
	if err != nil {
		t.Fatal(err)
	}
	q, err := a.HeatDissipation(op)
	if err != nil {
		t.Fatal(err)
	}
	// Heat = I*(OCV-V) ~ 6*(1.648-1.0) ~ 3.9 W.
	approx(t, q, op.Current*(1.648-1.0), 0.05, "array heat")
}

func TestArrayValidate(t *testing.T) {
	a := Power7Array()
	a.NChannels = 0
	if err := a.Validate(); err == nil {
		t.Fatal("zero channels accepted")
	}
	if _, err := a.CurrentAtVoltage(1); err == nil {
		t.Fatal("invalid array solved")
	}
	if _, err := a.VoltageAtCurrent(1); err == nil {
		t.Fatal("invalid array solved")
	}
	if _, err := a.Polarize(5, 0.9); err == nil {
		t.Fatal("invalid array polarized")
	}
}

func TestHotterArrayMakesMorePower(t *testing.T) {
	// Section III-B: raising the inlet to 37 C increases generated
	// power at fixed potential (quantified in the cosim package; here
	// we assert the direction at array level).
	cold := Power7ArrayAt(676, units.CtoK(27))
	hot := Power7ArrayAt(676, units.CtoK(37))
	opCold, err := cold.CurrentAtVoltage(1.0)
	if err != nil {
		t.Fatal(err)
	}
	opHot, err := hot.CurrentAtVoltage(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if opHot.Current <= opCold.Current {
		t.Fatalf("hot inlet must raise current: %.2f vs %.2f", opHot.Current, opCold.Current)
	}
}

func TestLowFlowArrayStillPowersCaches(t *testing.T) {
	// The 48 ml/min low-flow case of Section III-B must still be a
	// solvable operating regime.
	low := Power7ArrayAt(48, 300)
	if lim := low.LimitingCurrent(); lim < 2 {
		t.Fatalf("48 ml/min limiting current %.2f A unexpectedly low", lim)
	}
}
