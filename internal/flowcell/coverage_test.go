package flowcell

import (
	"math"
	"testing"
)

func TestElectrodeCoverageDefault(t *testing.T) {
	// Zero/one coverage: the fast analytic ohmic path, no field solve.
	c1 := KjeangCell(60)
	c2 := KjeangCell(60)
	c2.ElectrodeCoverage = 1
	if math.Abs(c1.OhmicASR()-c2.OhmicASR()) > 1e-15 {
		t.Fatal("coverage 0 and 1 must agree")
	}
}

func TestPartialCoverageRaisesASRAndCutsCurrent(t *testing.T) {
	full := Power7Array().Cell
	partial := Power7Array().Cell
	partial.ElectrodeCoverage = 0.5
	if partial.OhmicASR() <= full.OhmicASR() {
		t.Fatalf("half coverage ASR %g must exceed full %g", partial.OhmicASR(), full.OhmicASR())
	}
	opFull, err := full.CurrentAtVoltage(1.0)
	if err != nil {
		t.Fatal(err)
	}
	opPart, err := partial.CurrentAtVoltage(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if opPart.Current >= opFull.Current {
		t.Fatalf("constriction must cut current: %g vs %g", opPart.Current, opFull.Current)
	}
}

func TestConstrictionMemoized(t *testing.T) {
	c := Power7Array().Cell
	c.ElectrodeCoverage = 0.6
	a1 := c.OhmicASR()
	a2 := c.OhmicASR() // memo hit
	if a1 != a2 {
		t.Fatal("memoized factor changed between calls")
	}
	// Geometry change invalidates the memo.
	c.Channel.Height *= 2
	if c.OhmicASR() == a1 {
		t.Fatal("memo not invalidated by geometry change")
	}
}

func TestCoverageValidation(t *testing.T) {
	c := KjeangCell(60)
	c.ElectrodeCoverage = 1.2
	if err := c.Validate(); err == nil {
		t.Fatal("coverage > 1 accepted")
	}
	c.ElectrodeCoverage = -0.1
	if err := c.Validate(); err == nil {
		t.Fatal("negative coverage accepted")
	}
}
