package flowcell

import (
	"math"
	"testing"
)

func stack(t *testing.T, m int) *SeriesStack {
	t.Helper()
	rch, rm := DefaultShuntResistances()
	return &SeriesStack{
		Array:                     Power7Array(),
		SeriesGroups:              m,
		ChannelShuntResistance:    rch,
		ManifoldSegmentResistance: rm,
	}
}

func TestStackSingleGroupMatchesArray(t *testing.T) {
	// M=1 is the plain parallel array (plus a tiny terminal leakage).
	res, err := stack(t, 1).Solve(1.0)
	if err != nil {
		t.Fatal(err)
	}
	op, err := Power7Array().CurrentAtVoltage(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(res.TerminalCurrent-op.Current)/op.Current > 0.02 {
		t.Fatalf("M=1 stack %.3f A vs array %.3f A", res.TerminalCurrent, op.Current)
	}
	if res.ImbalancePct != 0 {
		t.Fatal("single group cannot be imbalanced")
	}
}

func TestStackShuntGrowsWithSeriesCount(t *testing.T) {
	var prevPct float64
	for _, m := range []int{1, 2, 4, 8} {
		res, err := stack(t, m).Solve(float64(m) * 1.0)
		if err != nil {
			t.Fatalf("M=%d: %v", m, err)
		}
		if res.ShuntLossPct <= prevPct {
			t.Fatalf("shunt loss must grow with series count: M=%d %.3f%% <= %.3f%%",
				m, res.ShuntLossPct, prevPct)
		}
		prevPct = res.ShuntLossPct
		// Power conservation sanity: delivered power stays near the
		// flat array's 6 W minus the shunt loss.
		if res.DeliveredW < 5.0 || res.DeliveredW > 6.5 {
			t.Fatalf("M=%d delivered %.2f W implausible", m, res.DeliveredW)
		}
	}
	// 8-series loss remains moderate (<10%) at the Table II shunt
	// resistances: series stacking is viable but not free.
	if prevPct > 10 {
		t.Fatalf("8-series shunt loss %.1f%% too large", prevPct)
	}
	if prevPct < 1 {
		t.Fatalf("8-series shunt loss %.1f%% suspiciously small", prevPct)
	}
}

func TestStackImbalanceGrows(t *testing.T) {
	r2, err := stack(t, 2).Solve(2.0)
	if err != nil {
		t.Fatal(err)
	}
	r8, err := stack(t, 8).Solve(8.0)
	if err != nil {
		t.Fatal(err)
	}
	if r8.ImbalancePct <= r2.ImbalancePct {
		t.Fatalf("imbalance must grow with series count: %.2f%% vs %.2f%%",
			r8.ImbalancePct, r2.ImbalancePct)
	}
	if len(r8.GroupCurrents) != 8 {
		t.Fatalf("group count %d", len(r8.GroupCurrents))
	}
	// End groups leak most: interior currents exceed the terminal ones.
	if r8.GroupCurrents[0] < r8.GroupCurrents[4] {
		t.Log("note: end group below interior (expected with end leakage)")
	}
}

func TestStackHigherShuntResistanceLessLoss(t *testing.T) {
	lossAt := func(rch float64) float64 {
		s := stack(t, 4)
		s.ChannelShuntResistance = rch
		res, err := s.Solve(4.0)
		if err != nil {
			t.Fatal(err)
		}
		return res.ShuntLossW
	}
	if lossAt(15000) >= lossAt(1500) {
		t.Fatal("longer/narrower feed paths must reduce shunt loss")
	}
}

func TestStackValidation(t *testing.T) {
	s := stack(t, 3)
	if err := s.Validate(); err == nil {
		t.Fatal("88 channels into 3 groups accepted")
	}
	s = stack(t, 2)
	s.ChannelShuntResistance = 0
	if err := s.Validate(); err == nil {
		t.Fatal("zero shunt resistance accepted")
	}
	s = stack(t, 0)
	if err := s.Validate(); err == nil {
		t.Fatal("zero groups accepted")
	}
	s = &SeriesStack{}
	if err := s.Validate(); err == nil {
		t.Fatal("nil array accepted")
	}
	if _, err := stack(t, 2).Solve(100); err == nil {
		t.Fatal("absurd terminal voltage accepted")
	}
}
