package flowcell

import (
	"fmt"
	"math"

	"bright/internal/echem"
	"bright/internal/num"
	"bright/internal/transport"
	"bright/internal/units"
)

// etaCapFVM bounds the electrode polarization magnitude the FVM solver
// will accept. Feasible operating points of the paper's cells stay below
// ~0.6 V per electrode; needing more indicates the requested current is
// beyond the transport limit.
const etaCapFVM = 1.2

// electrodeFVM solves one electrode with the full 2D transport field:
// the electrode metal is equipotential, so a single overpotential eta
// drives a nonuniform local current density i(x) determined jointly by
// Butler-Volmer kinetics and the concentration field that i(x) itself
// creates.
//
// The solve is a Picard iteration on the flux profile. The stiff local
// feedback (local current depletes the local surface concentration
// through the near-wall film) is handled *implicitly*: with the film
// linearization C_s(i) = C_wall +- (i - i_old) * film, the Butler-Volmer
// balance at fixed eta is linear in the local current, so each station
// updates in closed form. Only the slow upstream boundary-layer coupling
// is left to the outer iteration, which then converges in a handful of
// sweeps. An outer scalar solve picks eta so that the mean current
// matches iAvg (the electrode is equipotential).
//
// Downstream stations deplete first; the iteration redistributes current
// toward the leading edge exactly as the physical electrode does. The
// returned eta includes mass-transfer effects (it is the full electrode
// polarization relative to the bulk Nernst potential). iAvg is
// referenced to the effective (enhanced) electrode area.
func (c *Cell) electrodeFVM(spec ElectrodeSpec, mode echem.Mode, iAvg float64) (float64, error) {
	if iAvg <= 1e-9 {
		// Negligible against any practical operating current density
		// (the crossover-induced residual at open circuit lands here);
		// the overpotential is below nanovolts.
		return 0, nil
	}
	t := c.Temperature
	nx, ny := c.fvmGrid()
	v := c.MeanVelocity()
	gamma := transport.WallShearRate(v, c.shearGap())
	enh := c.enhancement()

	// Near-wall velocity: linear shear ramp capped at the channel peak;
	// the thin concentration boundary layer only samples the ramp.
	profile := func(y float64) float64 {
		u := gamma * y
		if peak := 1.5 * v; u > peak {
			u = peak
		}
		return u
	}
	mkProblem := func(d, cInlet float64) *transport.StreamProblem {
		return &transport.StreamProblem{
			Length:   c.Channel.Length,
			Height:   c.StreamWidth(),
			Velocity: profile,
			D:        d,
			CInlet:   cInlet,
			NX:       nx,
			NY:       ny,
		}
	}
	var dCons, dProd, cConsIn, cProdIn float64
	if mode == echem.Oxidation {
		dCons, cConsIn = spec.Couple.DRed(t), spec.CRedInlet
		dProd, cProdIn = spec.Couple.DOx(t), spec.COxInlet
	} else {
		dCons, cConsIn = spec.Couple.DOx(t), spec.COxInlet
		dProd, cProdIn = spec.Couple.DRed(t), spec.CRedInlet
	}
	pCons := mkProblem(dCons, cConsIn)
	pProd := mkProblem(dProd, cProdIn)

	nf := float64(spec.Couple.N) * units.Faraday
	// current (A/m2 of enhanced area) -> molar wall flux per geometric
	// area (mol/(m2 s)).
	toFlux := enh / nf
	dy := c.StreamWidth() / float64(ny)
	dx := c.Channel.Length / float64(nx)
	// Per-station film factors: the assumed surface-concentration
	// sensitivity to the local current. Any positive value leaves the
	// converged solution unchanged (the linearization is exact at the
	// fixed point); using the full local Leveque resistance rather than
	// the half-cell grid film makes the implicit update absorb nearly
	// all of the transport feedback, which is what keeps the outer
	// iteration stable even at the lowest flow rates.
	filmCons := make([]float64, nx)
	filmProd := make([]float64, nx)
	for k := 0; k < nx; k++ {
		x := (float64(k) + 0.5) * dx
		filmCons[k] = toFlux * ((dy/2)/dCons + 1/transport.KmLevequeLocal(dCons, gamma, x))
		filmProd[k] = toFlux * ((dy/2)/dProd + 1/transport.KmLevequeLocal(dProd, gamma, x))
	}

	iLocal := make([]float64, nx)
	for k := range iLocal {
		iLocal[k] = iAvg
	}
	stationFlux := func(prof []float64, sign float64) func(float64) float64 {
		return func(x float64) float64 {
			ix := int(x / dx)
			if ix < 0 {
				ix = 0
			}
			if ix >= nx {
				ix = nx - 1
			}
			return sign * prof[ix] * toFlux
		}
	}

	i0 := (echem.HalfCellState{
		Couple: spec.Couple, COxBulk: spec.COxInlet, CRedBulk: spec.CRedInlet,
		Temperature: t, KmOx: 1, KmRed: 1,
	}).ExchangeCurrentDensity()
	alpha := spec.Couple.Alpha
	f := float64(spec.Couple.N) * units.Faraday / (units.GasConstant * t)
	var cConsBulk, cProdBulk float64 = cConsIn, cProdIn

	const (
		maxPicard = 120
		tol       = 1e-5
	)
	relax := 0.7 // adaptively reduced if the iteration oscillates
	prevMaxRel := math.Inf(1)
	floor := 1e-9 * cConsIn
	newLocal := make([]float64, nx)
	var eta float64
	for iter := 0; iter < maxPicard; iter++ {
		solCons, err := pCons.SolveFluxWall(stationFlux(iLocal, 1))
		if err != nil {
			return 0, err
		}
		solProd, err := pProd.SolveFluxWall(stationFlux(iLocal, -1))
		if err != nil {
			return 0, err
		}
		consW := solCons.WallConc
		prodW := solProd.WallConc
		for k := 0; k < nx; k++ {
			if consW[k] < floor {
				consW[k] = floor
			}
			if prodW[k] < cProdIn {
				prodW[k] = cProdIn
			}
		}
		// Closed-form implicit station update at trial eta. With the
		// film linearization both surface concentrations are linear in
		// the local current, so the BV balance solves exactly:
		//   ox:  i [1 + i0 E1 filmC/cb + i0 E2 filmP/pb] =
		//        i0 E1 (consW + iOld filmC)/cb - i0 E2 (prodW - iOld filmP)/pb
		// (and the mirrored form for reduction), clamped to keep the
		// consumed-species surface concentration positive.
		stations := func(etaTry float64) []float64 {
			e1 := math.Exp(alpha * f * etaTry)
			e2 := math.Exp(-(1 - alpha) * f * etaTry)
			out := newLocal
			for k := 0; k < nx; k++ {
				iOld := iLocal[k]
				fc, fp := filmCons[k], filmProd[k]
				var numer, denom, iCap float64
				if mode == echem.Oxidation {
					// consumed = Red (bulk cConsBulk), produced = Ox.
					numer = i0*e1*(consW[k]+iOld*fc)/cConsBulk -
						i0*e2*(prodW[k]-iOld*fp)/cProdBulk
					denom = 1 + i0*e1*fc/cConsBulk + i0*e2*fp/cProdBulk
					iCap = iOld + (consW[k]-floor)/fc
				} else {
					// consumed = Ox, produced = Red; net current -i.
					// -i = i0[ prodS/pb e1 - consS/cb e2 ] with
					// prodS = prodW + (i-iOld) filmP (Red produced),
					// consS = consW - (i-iOld) filmC (Ox consumed).
					numer = i0*e2*(consW[k]+iOld*fc)/cConsBulk -
						i0*e1*(prodW[k]-iOld*fp)/cProdBulk
					denom = 1 + i0*e2*fc/cConsBulk + i0*e1*fp/cProdBulk
					iCap = iOld + (consW[k]-floor)/fc
				}
				i := numer / denom
				if i < 0 {
					i = 0
				}
				if i > iCap {
					i = iCap
				}
				out[k] = i
			}
			return out
		}
		meanAt := func(etaTry float64) float64 {
			s := 0.0
			for _, x := range stations(etaTry) {
				s += x
			}
			return s / float64(nx)
		}
		g := func(etaTry float64) float64 { return meanAt(etaTry) - iAvg }
		var lo, hi float64
		if mode == echem.Oxidation {
			lo, hi = 0, etaCapFVM
			if g(hi) < 0 {
				return 0, fmt.Errorf("%w: FVM electrode (%s) cannot sustain %g A/m2 within the eta cap",
					echem.ErrMassTransportLimited, mode, iAvg)
			}
		} else {
			lo, hi = -etaCapFVM, 0
			if g(lo) < 0 {
				return 0, fmt.Errorf("%w: FVM electrode (%s) cannot sustain %g A/m2 within the eta cap",
					echem.ErrMassTransportLimited, mode, iAvg)
			}
		}
		etaNew, err := num.Brent(g, lo, hi, 1e-12)
		if err != nil {
			return 0, fmt.Errorf("flowcell: FVM eta solve (%s, i=%g): %w", mode, iAvg, err)
		}
		upd := stations(etaNew)
		maxRel := 0.0
		for k := 0; k < nx; k++ {
			blended := relax*upd[k] + (1-relax)*iLocal[k]
			if d := math.Abs(blended-iLocal[k]) / math.Max(math.Abs(iAvg), 1e-12); d > maxRel {
				maxRel = d
			}
			iLocal[k] = blended
		}
		if maxRel > 0.9*prevMaxRel && relax > 0.05 {
			relax *= 0.6
		}
		prevMaxRel = maxRel
		etaConverged := iter > 0 && math.Abs(etaNew-eta) < 1e-9*(1+math.Abs(etaNew))
		if debugFVM {
			fmt.Printf("iter=%d eta=%.9f maxRel=%.3g relax=%.3f\n", iter, etaNew, maxRel, relax)
		}
		eta = etaNew
		if maxRel < tol || etaConverged {
			// Reject solutions pinned against the depletion clamp: they
			// indicate the requested current exceeds transport.
			for k := 0; k < nx; k++ {
				if consW[k] <= floor {
					return 0, fmt.Errorf("%w: FVM electrode (%s) surface depleted at station %d (i=%g A/m2)",
						echem.ErrMassTransportLimited, mode, k, iAvg)
				}
			}
			return eta, nil
		}
	}
	return 0, fmt.Errorf("flowcell: FVM electrode Picard did not converge (%s, i=%g A/m2)", mode, iAvg)
}

var debugFVM = false
