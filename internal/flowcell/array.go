package flowcell

import (
	"context"
	"fmt"

	"bright/internal/cfd"
	"bright/internal/echem"
	"bright/internal/hydro"
	"bright/internal/units"
)

// Array is a set of identical flow-cell channels electrically connected
// in parallel (Fig. 1 of the paper): same terminal voltage, summed
// current.
type Array struct {
	Cell      Cell
	NChannels int
}

// Validate reports whether the array is usable.
func (a *Array) Validate() error {
	if a.NChannels <= 0 {
		return fmt.Errorf("flowcell: array needs at least one channel, got %d", a.NChannels)
	}
	return a.Cell.Validate()
}

// VoltageAtCurrent solves the array terminal voltage at total current
// (split evenly across channels).
func (a *Array) VoltageAtCurrent(total float64) (OperatingPoint, error) {
	if err := a.Validate(); err != nil {
		return OperatingPoint{}, err
	}
	op, err := a.Cell.VoltageAtCurrent(total / float64(a.NChannels))
	if err != nil {
		return OperatingPoint{}, err
	}
	return a.scaleUp(op), nil
}

// CurrentAtVoltage solves the total array current at terminal voltage v.
func (a *Array) CurrentAtVoltage(v float64) (OperatingPoint, error) {
	if err := a.Validate(); err != nil {
		return OperatingPoint{}, err
	}
	op, err := a.Cell.CurrentAtVoltage(v)
	if err != nil {
		return OperatingPoint{}, err
	}
	return a.scaleUp(op), nil
}

// Polarize sweeps the array's V-I characteristic (Fig. 7).
func (a *Array) Polarize(n int, maxFrac float64) (PolarizationCurve, error) {
	return a.PolarizeContext(context.Background(), n, maxFrac)
}

// PolarizeContext is Polarize with cancellation, checked at every sweep
// point.
func (a *Array) PolarizeContext(ctx context.Context, n int, maxFrac float64) (PolarizationCurve, error) {
	if err := a.Validate(); err != nil {
		return nil, err
	}
	curve, err := a.Cell.PolarizeContext(ctx, n, maxFrac)
	if err != nil {
		return nil, err
	}
	out := make(PolarizationCurve, len(curve))
	for k, op := range curve {
		out[k] = a.scaleUp(op)
	}
	return out, nil
}

// scaleUp converts a per-channel operating point to array totals.
// Intensive quantities (voltage, densities, losses) are unchanged.
func (a *Array) scaleUp(op OperatingPoint) OperatingPoint {
	n := float64(a.NChannels)
	op.Current *= n
	op.Power *= n
	return op
}

// LimitingCurrent returns the array's total transport-limited current (A).
func (a *Array) LimitingCurrent() float64 {
	return a.Cell.LimitingCurrent() * float64(a.NChannels)
}

// TotalGeometricElectrodeArea returns the summed flat electrode area (m2).
func (a *Array) TotalGeometricElectrodeArea() float64 {
	return a.Cell.GeometricElectrodeArea() * float64(a.NChannels)
}

// TotalFlowRate returns the total volumetric flow (m3/s) through the
// array (both streams of every channel).
func (a *Array) TotalFlowRate() float64 {
	return 2 * a.Cell.StreamFlowRate * float64(a.NChannels)
}

// HydraulicNetwork builds the hydro.Network for pressure-drop and
// pumping-power analysis of the array.
func (a *Array) HydraulicNetwork(manifoldK, pumpEfficiency float64) hydro.Network {
	return hydro.Network{
		Channel:        a.Cell.Channel,
		Fluid:          a.Cell.fluid(),
		NChannels:      a.NChannels,
		ManifoldK:      manifoldK,
		PumpEfficiency: pumpEfficiency,
	}
}

// HeatDissipation returns the total electrochemical heat (W) of the
// array at the given operating point.
func (a *Array) HeatDissipation(op OperatingPoint) (float64, error) {
	perChannel, err := a.Cell.HeatDissipation(op.Current/float64(a.NChannels), op.Voltage)
	if err != nil {
		return 0, err
	}
	return perChannel * float64(a.NChannels), nil
}

// --- Paper fixtures -------------------------------------------------

// KjeangCell returns the Table I validation cell of Kjeang et al. 2007
// at the given per-stream flow rate in uL/min (the paper sweeps 2.5, 10,
// 60 and 300). The contact ASR lumps the graphite-rod electrode and
// collector resistances of the experimental cell.
func KjeangCell(flowULMin float64) *Cell {
	return &Cell{
		Channel: cfd.Channel{
			Width:  2e-3,   // electrode gap
			Height: 150e-6, // etch depth
			Length: 33e-3,
		},
		Electrolyte: echem.VanadiumElectrolyte(),
		Anode: ElectrodeSpec{
			Couple:    echem.VanadiumNegative(),
			COxInlet:  80,
			CRedInlet: 920,
		},
		Cathode: ElectrodeSpec{
			Couple:    echem.VanadiumPositive(),
			COxInlet:  992,
			CRedInlet: 8,
		},
		StreamFlowRate:  units.ULPerMinToM3PerS(flowULMin),
		Temperature:     units.StandardTemperature,
		ContactASR:      2.5e-4, // ohm.m2 (2.5 ohm.cm2), graphite-rod cell
		AreaEnhancement: 1,
		Path:            PathCorrelation,
	}
}

// KjeangFlowRatesULMin are the four flow rates of the paper's Fig. 3.
var KjeangFlowRatesULMin = []float64{2.5, 10, 60, 300}

// Power7ArrayEnhancement is the structured-electrode area enhancement
// used for the Table II array. The Rapp 2012 design behind Table II uses
// flow-through (non-planar) electrodes; a 1.65x wetted-area gain is at
// the conservative end of such structures and calibrates the array to
// the paper's 6 A at 1 V headline (see EXPERIMENTS.md).
const Power7ArrayEnhancement = 1.65

// Power7Array returns the 88-channel Table II array integrated on the
// POWER7+ die, at the nominal 676 ml/min total flow and 300 K inlet.
func Power7Array() *Array {
	return &Array{
		Cell:      power7Cell(units.MLPerMinToM3PerS(676), 300),
		NChannels: 88,
	}
}

// Power7ArrayAt returns the Table II array at a custom total flow rate
// (ml/min) and operating temperature (K) — the knobs of the paper's
// Section III-B sensitivity study (676 vs 48 ml/min, 27 vs 37 C inlet).
func Power7ArrayAt(totalMLMin, temperature float64) *Array {
	return &Array{
		Cell:      power7Cell(units.MLPerMinToM3PerS(totalMLMin), temperature),
		NChannels: 88,
	}
}

// Power7ArrayCustom returns a Table II-style array with custom channel
// geometry and channel count at the given total flow (m3/s) and
// temperature (K) — the knob set of the design-space exploration. The
// chemistry, electrolyte, contact resistance and electrode enhancement
// stay at the Table II values.
func Power7ArrayCustom(ch cfd.Channel, nChannels int, totalFlow, temperature float64) *Array {
	cell := power7Cell(totalFlow, temperature)
	cell.Channel = ch
	cell.StreamFlowRate = totalFlow / (2 * float64(nChannels))
	return &Array{Cell: cell, NChannels: nChannels}
}

func power7Cell(totalFlow, temperature float64) Cell {
	perStream := totalFlow / (2 * 88)
	return Cell{
		Channel: cfd.Channel{
			Width:  200e-6,
			Height: 400e-6,
			Length: 22e-3,
		},
		Electrolyte: echem.VanadiumElectrolyte(),
		Anode: ElectrodeSpec{
			Couple:    echem.VanadiumNegativeTableII(),
			COxInlet:  1,
			CRedInlet: 2000,
		},
		Cathode: ElectrodeSpec{
			Couple:    echem.VanadiumPositiveTableII(),
			COxInlet:  2000,
			CRedInlet: 1,
		},
		StreamFlowRate:  perStream,
		Temperature:     temperature,
		ContactASR:      2e-5, // integrated TSV/collector path, ohm.m2
		AreaEnhancement: Power7ArrayEnhancement,
		Path:            PathCorrelation,
	}
}
