package flowcell

import (
	"errors"
	"math"
	"testing"
)

func TestPolarizationCurveShape(t *testing.T) {
	for _, q := range KjeangFlowRatesULMin {
		c := KjeangCell(q)
		curve, err := c.Polarize(15, 0.97)
		if err != nil {
			t.Fatalf("%g uL/min: %v", q, err)
		}
		if len(curve) != 15 {
			t.Fatalf("curve length %d", len(curve))
		}
		if !curve.IsMonotoneDecreasing() {
			t.Fatalf("%g uL/min: voltage not monotone decreasing", q)
		}
		// First point is open circuit (up to the tiny crossover-induced
		// mixed-potential depression, micro-volts here).
		if curve[0].Current != 0 || math.Abs(curve[0].Voltage-curve[0].OpenCircuit) > 1e-4 {
			t.Fatalf("%g uL/min: first point not OCV: %+v", q, curve[0])
		}
		// All voltages positive over the swept range (cells stay useful
		// to ~97%% of limiting in this chemistry).
		for _, op := range curve {
			if op.Voltage <= 0 {
				t.Fatalf("%g uL/min: nonpositive voltage %g at i=%g", q, op.Voltage, op.Current)
			}
		}
	}
}

func TestHigherFlowHigherCurve(t *testing.T) {
	// At any shared current, the faster-fed cell must sit at equal or
	// higher voltage (thinner boundary layers) — the Fig. 3 ordering.
	cLow := KjeangCell(10)
	cHigh := KjeangCell(300)
	iShared := 0.8 * cLow.LimitingCurrent()
	opLow, err := cLow.VoltageAtCurrent(iShared)
	if err != nil {
		t.Fatal(err)
	}
	opHigh, err := cHigh.VoltageAtCurrent(iShared)
	if err != nil {
		t.Fatal(err)
	}
	if opHigh.Voltage <= opLow.Voltage {
		t.Fatalf("flow ordering violated: %g vs %g", opHigh.Voltage, opLow.Voltage)
	}
}

func TestVoltageCurrentRoundTrip(t *testing.T) {
	c := KjeangCell(60)
	op, err := c.VoltageAtCurrent(0.6 * c.LimitingCurrent())
	if err != nil {
		t.Fatal(err)
	}
	back, err := c.CurrentAtVoltage(op.Voltage)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, back.Current, op.Current, 1e-6, "V->I->V round trip")
}

func TestCurrentAtVoltageEdges(t *testing.T) {
	c := KjeangCell(60)
	ocv, _ := c.OpenCircuitVoltage()
	// At or above OCV: zero current.
	op, err := c.CurrentAtVoltage(ocv + 0.1)
	if err != nil || op.Current != 0 {
		t.Fatalf("above-OCV point: %+v err=%v", op, err)
	}
	// Far below the limiting voltage: ErrBeyondLimit.
	if _, err := c.CurrentAtVoltage(0.01); !errors.Is(err, ErrBeyondLimit) {
		t.Fatalf("expected ErrBeyondLimit, got %v", err)
	}
	// Negative current rejected.
	if _, err := c.VoltageAtCurrent(-1); err == nil {
		t.Fatal("negative current accepted")
	}
}

func TestBeyondLimitError(t *testing.T) {
	c := KjeangCell(60)
	if _, err := c.VoltageAtCurrent(1.01 * c.LimitingCurrent()); !errors.Is(err, ErrBeyondLimit) {
		t.Fatalf("expected ErrBeyondLimit, got %v", err)
	}
}

func TestLossDecomposition(t *testing.T) {
	c := KjeangCell(60)
	op, err := c.VoltageAtCurrent(0.5 * c.LimitingCurrent())
	if err != nil {
		t.Fatal(err)
	}
	// V = OCV - anode - cathode - ohmic.
	sum := op.OpenCircuit - op.AnodeLoss - op.CathodeLoss - op.OhmicLoss
	approx(t, op.Voltage, sum, 1e-9, "loss budget closes")
	if op.AnodeLoss <= 0 || op.CathodeLoss <= 0 || op.OhmicLoss <= 0 {
		t.Fatalf("all losses must be positive under load: %+v", op)
	}
}

func TestMaxPowerInInterior(t *testing.T) {
	c := KjeangCell(300)
	curve, err := c.Polarize(40, 0.98)
	if err != nil {
		t.Fatal(err)
	}
	best := curve.MaxPower()
	if best.Current == 0 || best.Current == curve[len(curve)-1].Current {
		t.Fatalf("max power at sweep boundary: %+v", best)
	}
	// Peak power density for the validation cell sits in the tens of
	// mW/cm2 (the experimental cell peaked around 20-35 mW/cm2).
	pd := best.PowerDensity * 1e-4 * 1e3 // W/m2 -> mW/cm2
	if pd < 5 || pd > 80 {
		t.Fatalf("peak power density %g mW/cm2 implausible", pd)
	}
}

func TestCurveInterpolation(t *testing.T) {
	c := KjeangCell(60)
	curve, err := c.Polarize(20, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	mid := 0.5 * curve[len(curve)-1].Current
	v, err := curve.VoltageAt(mid)
	if err != nil {
		t.Fatal(err)
	}
	direct, err := c.VoltageAtCurrent(mid)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, v, direct.Voltage, 0.01, "interpolated voltage")
	if _, err := curve.VoltageAt(-1); err == nil {
		t.Fatal("out-of-range interpolation accepted")
	}
	if _, err := (PolarizationCurve{}).VoltageAt(0); err == nil {
		t.Fatal("empty curve accepted")
	}
}

func TestPolarizeArgs(t *testing.T) {
	c := KjeangCell(60)
	if _, err := c.Polarize(1, 0.9); err == nil {
		t.Fatal("n=1 accepted")
	}
	if _, err := c.Polarize(5, 1.5); err == nil {
		t.Fatal("maxFrac>1 accepted")
	}
	if _, err := c.Polarize(5, 0); err == nil {
		t.Fatal("maxFrac=0 accepted")
	}
}

func TestFVMAgreesWithCorrelation(t *testing.T) {
	// The two solver paths are independent models of the same physics;
	// DESIGN.md requires them to agree within ~10% over the operating
	// range (this is the model-consistency half of the Fig. 3
	// validation).
	for _, q := range []float64{10, 60, 300} {
		corr := KjeangCell(q)
		iL := corr.LimitingCurrent()
		fvm := KjeangCell(q)
		fvm.Path = PathFVM
		for _, frac := range []float64{0.2, 0.5, 0.8} {
			opC, err := corr.VoltageAtCurrent(frac * iL)
			if err != nil {
				t.Fatalf("corr %g/%g: %v", q, frac, err)
			}
			opF, err := fvm.VoltageAtCurrent(frac * iL)
			if err != nil {
				t.Fatalf("fvm %g/%g: %v", q, frac, err)
			}
			if d := math.Abs(opF.Voltage-opC.Voltage) / opC.Voltage; d > 0.10 {
				t.Errorf("%g uL/min frac %.1f: paths differ %.1f%% (corr %.3f, fvm %.3f)",
					q, frac, 100*d, opC.Voltage, opF.Voltage)
			}
		}
	}
}

func TestFVMPolarizeLowestFlow(t *testing.T) {
	// The FVM limit at 2.5 uL/min is below the correlation limit (local
	// downstream depletion); Polarize must adapt via effectiveLimit.
	c := KjeangCell(2.5)
	c.Path = PathFVM
	curve, err := c.Polarize(8, 0.95)
	if err != nil {
		t.Fatal(err)
	}
	if !curve.IsMonotoneDecreasing() {
		t.Fatal("FVM curve not monotone")
	}
	corrLim := c.LimitingCurrent()
	fvmLim := curve[len(curve)-1].Current / 0.95
	if fvmLim > corrLim {
		t.Fatalf("FVM effective limit %g should not exceed correlation limit %g", fvmLim, corrLim)
	}
	if fvmLim < 0.5*corrLim {
		t.Fatalf("FVM effective limit %g implausibly far below correlation %g", fvmLim, corrLim)
	}
}

func TestUnknownPathRejected(t *testing.T) {
	c := KjeangCell(60)
	c.Path = SolverPath(99)
	if _, err := c.VoltageAtCurrent(1e-4); err == nil {
		t.Fatal("unknown path accepted")
	}
	if SolverPath(99).String() == "" || PathCorrelation.String() != "correlation" || PathFVM.String() != "fvm" {
		t.Fatal("SolverPath.String broken")
	}
}
