// Package echem implements the electrochemical theory of Section II of
// the paper: Nernst equilibrium potentials, Butler-Volmer electrode
// kinetics with mass-transfer-limited surface concentrations, overvoltage
// decomposition, and the temperature dependence of the kinetic and
// transport parameters (Arrhenius forms following Al-Fetlawi et al. 2009,
// the paper's reference [24]).
//
// Sign conventions: current densities are magnitudes (A/m2, positive);
// the reaction direction is carried explicitly by Mode. Overpotentials
// are signed: positive for oxidation (anodic), negative for reduction
// (cathodic), so that E_electrode = E_Nernst(bulk) + eta in all cases.
package echem

import (
	"fmt"
	"math"

	"bright/internal/units"
)

// Mode selects the reaction direction at an electrode.
type Mode int

const (
	// Oxidation: Red -> Ox + n e- (the anode of a discharging cell).
	Oxidation Mode = iota
	// Reduction: Ox + n e- -> Red (the cathode of a discharging cell).
	Reduction
)

// String implements fmt.Stringer.
func (m Mode) String() string {
	switch m {
	case Oxidation:
		return "oxidation"
	case Reduction:
		return "reduction"
	default:
		return fmt.Sprintf("Mode(%d)", int(m))
	}
}

// Couple describes one redox couple with its kinetic and transport
// parameters at a reference temperature, plus activation energies for
// Arrhenius scaling to other temperatures.
type Couple struct {
	Name string
	// E0 is the standard electrode potential in V vs SHE.
	E0 float64
	// N is the number of electrons transferred (1 for both vanadium
	// couples, reactions (2) and (3) in the paper).
	N int
	// Alpha is the (anodic) transfer coefficient in (0, 1).
	Alpha float64
	// K0Ref is the standard heterogeneous rate constant (m/s) at TRef.
	K0Ref float64
	// DOxRef and DRedRef are the diffusion coefficients (m2/s) of the
	// oxidized and reduced species at TRef.
	DOxRef, DRedRef float64
	// EaK0 and EaD are Arrhenius activation energies (J/mol) for the
	// rate constant and the diffusion coefficients.
	EaK0, EaD float64
	// TRef is the reference temperature (K) for the parameters above.
	TRef float64
}

// Validate reports whether the couple's parameters are physical.
func (c Couple) Validate() error {
	if c.N <= 0 {
		return fmt.Errorf("echem: couple %q: N = %d", c.Name, c.N)
	}
	if c.Alpha <= 0 || c.Alpha >= 1 {
		return fmt.Errorf("echem: couple %q: alpha = %g out of (0,1)", c.Name, c.Alpha)
	}
	if c.K0Ref <= 0 || c.DOxRef <= 0 || c.DRedRef <= 0 {
		return fmt.Errorf("echem: couple %q: nonpositive kinetic/transport parameter", c.Name)
	}
	if c.TRef <= 0 {
		return fmt.Errorf("echem: couple %q: TRef = %g", c.Name, c.TRef)
	}
	return nil
}

// arrhenius scales a reference value by exp(-Ea/R (1/T - 1/TRef)), i.e.
// the value increases with temperature for positive Ea.
func arrhenius(ref, ea, t, tRef float64) float64 {
	return ref * math.Exp(-ea/units.GasConstant*(1/t-1/tRef))
}

// K0 returns the rate constant at temperature t (K).
func (c Couple) K0(t float64) float64 { return arrhenius(c.K0Ref, c.EaK0, t, c.TRef) }

// DOx returns the oxidized-species diffusion coefficient at t (K).
func (c Couple) DOx(t float64) float64 { return arrhenius(c.DOxRef, c.EaD, t, c.TRef) }

// DRed returns the reduced-species diffusion coefficient at t (K).
func (c Couple) DRed(t float64) float64 { return arrhenius(c.DRedRef, c.EaD, t, c.TRef) }

// Default activation energies (J/mol). The rate-constant value follows
// the Butler-Volmer fits of Al-Fetlawi et al. 2009 for the vanadium
// couples; the diffusion value reflects Stokes-Einstein scaling with the
// sulfuric-acid electrolyte's viscosity activation energy.
const (
	DefaultEaK0 = 22e3
	DefaultEaD  = 20e3
)

// VanadiumNegative returns the V2+/V3+ couple with the paper's Table I
// parameters (anode of the validation cell, reaction (2): E0 = -0.255 V).
func VanadiumNegative() Couple {
	return Couple{
		Name:    "V(II)/V(III)",
		E0:      -0.255,
		N:       1,
		Alpha:   0.5,
		K0Ref:   2e-5,
		DOxRef:  1.7e-10,
		DRedRef: 1.7e-10,
		EaK0:    DefaultEaK0,
		EaD:     DefaultEaD,
		TRef:    units.StandardTemperature,
	}
}

// VanadiumPositive returns the VO2+/VO2+ couple with the paper's Table I
// parameters (cathode of the validation cell, reaction (3): E0 = +0.991 V).
func VanadiumPositive() Couple {
	return Couple{
		Name:    "V(IV)/V(V)",
		E0:      0.991,
		N:       1,
		Alpha:   0.5,
		K0Ref:   1e-5,
		DOxRef:  1.3e-10,
		DRedRef: 1.3e-10,
		EaK0:    DefaultEaK0,
		EaD:     DefaultEaD,
		TRef:    units.StandardTemperature,
	}
}

// VanadiumNegativeTableII and VanadiumPositiveTableII return the couples
// with the Table II parameters used for the POWER7+ array (the Rapp 2012
// thesis data, reference [20]): higher rate constants and, on the anode,
// a higher diffusion coefficient than the Table I validation cell.
func VanadiumNegativeTableII() Couple {
	c := VanadiumNegative()
	c.K0Ref = 5.33e-5
	c.DOxRef = 4.13e-10
	c.DRedRef = 4.13e-10
	c.TRef = 300
	return c
}

// VanadiumPositiveTableII returns the positive couple with Table II
// parameters. Note Table II rounds the standard potential to 1.0 V.
func VanadiumPositiveTableII() Couple {
	c := VanadiumPositive()
	c.E0 = 1.0
	c.K0Ref = 4.67e-5
	c.DOxRef = 1.26e-10
	c.DRedRef = 1.26e-10
	c.TRef = 300
	return c
}
