package echem

import (
	"errors"
	"fmt"
	"math"

	"bright/internal/num"
	"bright/internal/units"
)

// ErrMassTransportLimited is returned when a requested current density
// exceeds the limiting current of the electrode, so no steady operating
// point exists.
var ErrMassTransportLimited = errors.New("echem: current exceeds mass-transport limit")

// HalfCellState is the operating state of one electrode: the couple, the
// bulk (inlet) concentrations, the local temperature and the
// mass-transfer coefficients that the hydrodynamics provide.
type HalfCellState struct {
	Couple Couple
	// COxBulk and CRedBulk are bulk concentrations in mol/m3.
	COxBulk, CRedBulk float64
	// Temperature in K.
	Temperature float64
	// KmOx and KmRed are mass-transfer coefficients (m/s) for the
	// oxidized and reduced species between bulk and electrode surface.
	// They come from the Leveque/Graetz correlations or the FVM
	// transport solve in package transport.
	KmOx, KmRed float64
}

// Validate reports whether the state is physically usable.
func (h HalfCellState) Validate() error {
	if err := h.Couple.Validate(); err != nil {
		return err
	}
	if h.COxBulk <= 0 || h.CRedBulk <= 0 {
		return fmt.Errorf("echem: nonpositive bulk concentration (Ox=%g, Red=%g)", h.COxBulk, h.CRedBulk)
	}
	if h.Temperature <= 0 {
		return fmt.Errorf("echem: nonpositive temperature %g", h.Temperature)
	}
	if h.KmOx <= 0 || h.KmRed <= 0 {
		return fmt.Errorf("echem: nonpositive mass-transfer coefficient (Ox=%g, Red=%g)", h.KmOx, h.KmRed)
	}
	return nil
}

// ExchangeCurrentDensity returns i0 = n F k0(T) COx^alpha CRed^(1-alpha)
// in A/m2, the paper's definition below equation (6).
func (h HalfCellState) ExchangeCurrentDensity() float64 {
	c := h.Couple
	k0 := c.K0(h.Temperature)
	return float64(c.N) * units.Faraday * k0 *
		math.Pow(h.COxBulk, c.Alpha) * math.Pow(h.CRedBulk, 1-c.Alpha)
}

// LimitingCurrentDensity returns the mass-transport limiting current
// density (A/m2) for the given reaction direction: the current at which
// the consumed species' surface concentration reaches zero.
func (h HalfCellState) LimitingCurrentDensity(mode Mode) float64 {
	nf := float64(h.Couple.N) * units.Faraday
	if mode == Oxidation {
		return nf * h.KmRed * h.CRedBulk
	}
	return nf * h.KmOx * h.COxBulk
}

// SurfaceConcentrations returns (COx, CRed) at the electrode surface for
// current density i (A/m2, magnitude) in the given direction, from the
// steady mass balance i = n F km (Cbulk - Csurf) for the consumed species
// and the mirrored relation for the produced one.
func (h HalfCellState) SurfaceConcentrations(i float64, mode Mode) (cOx, cRed float64, err error) {
	if i < 0 {
		return 0, 0, fmt.Errorf("echem: negative current density %g (direction is carried by Mode)", i)
	}
	nf := float64(h.Couple.N) * units.Faraday
	if mode == Oxidation {
		cRed = h.CRedBulk - i/(nf*h.KmRed)
		cOx = h.COxBulk + i/(nf*h.KmOx)
	} else {
		cOx = h.COxBulk - i/(nf*h.KmOx)
		cRed = h.CRedBulk + i/(nf*h.KmRed)
	}
	if cOx <= 0 || cRed <= 0 {
		return cOx, cRed, fmt.Errorf("%w: i=%g A/m2, iL=%g A/m2",
			ErrMassTransportLimited, i, h.LimitingCurrentDensity(mode))
	}
	return cOx, cRed, nil
}

// CurrentDensity evaluates the Butler-Volmer relation (paper eq. (6),
// with the physically correct exponent F eta/(R T); the paper's printed
// RT eta/F is a typesetting slip) at overpotential eta using the surface
// concentrations implied by the current ix already drawn:
//
//	i(eta) = i0 [ (CRed_s/CRed_b) e^{alpha f eta} - (COx_s/COx_b) e^{-(1-alpha) f eta} ]
//
// with f = n F/(R T). Positive result = net oxidation.
func (h HalfCellState) CurrentDensity(eta float64, cOxSurf, cRedSurf float64) float64 {
	c := h.Couple
	i0 := h.ExchangeCurrentDensity()
	f := float64(c.N) * units.Faraday / (units.GasConstant * h.Temperature)
	return i0 * (cRedSurf/h.CRedBulk*math.Exp(c.Alpha*f*eta) -
		cOxSurf/h.COxBulk*math.Exp(-(1-c.Alpha)*f*eta))
}

// Overpotential solves the Butler-Volmer relation for the signed
// overpotential eta that sustains current density i (magnitude) in the
// given direction, including the mass-transfer contribution through the
// surface concentrations. For i = 0 it returns 0.
func (h HalfCellState) Overpotential(i float64, mode Mode) (float64, error) {
	if err := h.Validate(); err != nil {
		return 0, err
	}
	if i == 0 {
		return 0, nil
	}
	cOxS, cRedS, err := h.SurfaceConcentrations(i, mode)
	if err != nil {
		return 0, err
	}
	target := i
	if mode == Reduction {
		target = -i
	}
	g := func(eta float64) float64 {
		return h.CurrentDensity(eta, cOxS, cRedS) - target
	}
	// The net current is strictly increasing in eta, so a sign-change
	// bracket always exists; expand from a thermal-voltage-scale window.
	vt := ThermalVoltage(h.Temperature)
	var lo, hi float64
	if mode == Oxidation {
		lo, hi = 0, 10*vt
	} else {
		lo, hi = -10*vt, 0
	}
	lo, hi, err = num.ExpandBracket(g, lo, hi, 60)
	if err != nil {
		return 0, fmt.Errorf("echem: bracketing overpotential for i=%g (%s): %w", i, mode, err)
	}
	eta, err := num.Brent(g, lo, hi, 1e-12)
	if err != nil {
		return 0, fmt.Errorf("echem: solving overpotential for i=%g (%s): %w", i, mode, err)
	}
	return eta, nil
}

// OvervoltageBreakdown decomposes the total overpotential at current i
// into charge-transfer and mass-transfer parts (paper eqs. (7)-(8)): the
// mass-transfer part is the overpotential that would remain if kinetics
// were infinitely fast (Nernstian shift from surface vs bulk
// concentrations); the charge-transfer part is the remainder.
type OvervoltageBreakdown struct {
	Total          float64 // V, signed
	ChargeTransfer float64 // V, signed
	MassTransfer   float64 // V, signed
}

// Breakdown computes the decomposition at current density i.
func (h HalfCellState) Breakdown(i float64, mode Mode) (OvervoltageBreakdown, error) {
	total, err := h.Overpotential(i, mode)
	if err != nil {
		return OvervoltageBreakdown{}, err
	}
	cOxS, cRedS, err := h.SurfaceConcentrations(i, mode)
	if err != nil {
		return OvervoltageBreakdown{}, err
	}
	// Nernstian surface shift: E(surface) - E(bulk).
	vt := ThermalVoltage(h.Temperature) / float64(h.Couple.N)
	mt := vt * math.Log((cOxS/h.COxBulk)*(h.CRedBulk/cRedS))
	return OvervoltageBreakdown{
		Total:          total,
		ChargeTransfer: total - mt,
		MassTransfer:   mt,
	}, nil
}
