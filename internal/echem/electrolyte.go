package echem

import (
	"fmt"
	"math"

	"bright/internal/units"
)

// Electrolyte carries the bulk solution properties of one electrolyte
// stream (vanadium species in sulfuric acid) with their temperature
// dependence. Reference values follow the paper's Tables I/II and, where
// the paper is silent (conductivity, temperature coefficients), the
// non-isothermal VRFB model of Al-Fetlawi et al. 2009 [24].
type Electrolyte struct {
	// DensityRef is the density (kg/m3) at TRef. The thermal expansion
	// of the aqueous electrolyte over the 27-50 C window is < 1% and is
	// neglected, as in the paper.
	DensityRef float64
	// ViscosityRef is the dynamic viscosity (Pa.s) at TRef.
	ViscosityRef float64
	// EaViscosity is the Arrhenius activation energy (J/mol) of the
	// viscosity (viscosity *decreases* with temperature).
	EaViscosity float64
	// ConductivityRef is the ionic conductivity (S/m) at TRef.
	ConductivityRef float64
	// ConductivityTempCoeff is the linear temperature coefficient of
	// conductivity (1/K), typically +0.01 to +0.02 for sulfuric-acid
	// vanadium electrolytes.
	ConductivityTempCoeff float64
	// ThermalConductivity in W/(m.K) (water-like; weakly T-dependent).
	ThermalConductivity float64
	// HeatCapacityVol is the volumetric heat capacity rho*cp (J/(m3.K)),
	// Table II value 4.187e6.
	HeatCapacityVol float64
	// TRef is the reference temperature (K).
	TRef float64
}

// Validate reports whether the electrolyte description is physical.
func (e Electrolyte) Validate() error {
	if e.DensityRef <= 0 || e.ViscosityRef <= 0 || e.ConductivityRef <= 0 ||
		e.ThermalConductivity <= 0 || e.HeatCapacityVol <= 0 || e.TRef <= 0 {
		return fmt.Errorf("echem: nonphysical electrolyte %+v", e)
	}
	return nil
}

// Density returns the density at temperature t (currently
// temperature-independent; see DensityRef).
func (e Electrolyte) Density(t float64) float64 { return e.DensityRef }

// Viscosity returns the dynamic viscosity (Pa.s) at temperature t with
// Arrhenius (Andrade) scaling: mu = mu_ref exp(+Ea/R (1/T - 1/TRef)).
func (e Electrolyte) Viscosity(t float64) float64 {
	return e.ViscosityRef * math.Exp(e.EaViscosity/units.GasConstant*(1/t-1/e.TRef))
}

// Conductivity returns the ionic conductivity (S/m) at temperature t.
func (e Electrolyte) Conductivity(t float64) float64 {
	s := e.ConductivityRef * (1 + e.ConductivityTempCoeff*(t-e.TRef))
	if s < 0.1*e.ConductivityRef {
		// Clamp unphysical extrapolation far below TRef.
		s = 0.1 * e.ConductivityRef
	}
	return s
}

// VanadiumElectrolyte returns the paper's electrolyte (Tables I/II:
// density 1260 kg/m3, viscosity 2.53 mPa.s, thermal conductivity
// 0.67 W/mK, volumetric heat capacity 4.187e6 J/m3K) with literature
// values for the properties the paper does not tabulate.
func VanadiumElectrolyte() Electrolyte {
	return Electrolyte{
		DensityRef:            1260,
		ViscosityRef:          2.53e-3,
		EaViscosity:           16e3, // water-like Andrade activation energy
		ConductivityRef:       40,   // S/m, ~2 M vanadium in 2-3 M H2SO4
		ConductivityTempCoeff: 0.015,
		ThermalConductivity:   0.67,
		HeatCapacityVol:       4.187e6,
		TRef:                  300,
	}
}
