package echem

import (
	"errors"
	"math"
	"testing"

	"bright/internal/units"
)

func approx(t *testing.T, got, want, rel float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > rel*math.Abs(want) {
		t.Errorf("%s: got %g want %g (rel tol %g)", msg, got, want, rel)
	}
}

func TestStandardOCV(t *testing.T) {
	// Paper: U0 = E0_pos - E0_neg = 1.25 V (with the unrounded -0.26 and
	// +0.99 it quotes in the prose; Table I gives -0.255/0.991 -> 1.246).
	u0 := StandardOCV(VanadiumPositive(), VanadiumNegative())
	approx(t, u0, 1.246, 0.005, "standard OCV")
}

func TestThermalVoltage(t *testing.T) {
	approx(t, ThermalVoltage(units.StandardTemperature), 0.025693, 1e-3, "RT/F at 25C")
}

func TestNernstTableI(t *testing.T) {
	// Validation-cell inlet state (Table I): anode Ox 80 / Red 920,
	// cathode Ox 992 / Red 8.
	eNeg, err := NernstPotential(VanadiumNegative(), units.StandardTemperature, 80, 920)
	if err != nil {
		t.Fatal(err)
	}
	// E = -0.255 + 0.0257*ln(80/920) = -0.3177 V
	approx(t, eNeg, -0.3177, 0.005, "anode Nernst")
	ePos, err := NernstPotential(VanadiumPositive(), units.StandardTemperature, 992, 8)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, ePos, 1.1149, 0.005, "cathode Nernst")
	// Full-cell OCV ~ 1.43 V.
	ocv, err := OpenCircuitVoltage(
		HalfCellState{Couple: VanadiumPositive(), COxBulk: 992, CRedBulk: 8, Temperature: units.StandardTemperature, KmOx: 1, KmRed: 1},
		HalfCellState{Couple: VanadiumNegative(), COxBulk: 80, CRedBulk: 920, Temperature: units.StandardTemperature, KmOx: 1, KmRed: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, ocv, 1.4326, 0.005, "full-cell OCV")
}

func TestNernstTableII(t *testing.T) {
	// POWER7+ array state (Table II): both electrodes 2000:1, T=300 K.
	// OCV = (1.0 + vt*ln 2000) - (-0.255 - vt*ln 2000) ~ 1.648 V, the
	// ~1.6 V intercept visible in the paper's Fig. 7.
	ocv, err := OpenCircuitVoltage(
		HalfCellState{Couple: VanadiumPositiveTableII(), COxBulk: 2000, CRedBulk: 1, Temperature: 300, KmOx: 1, KmRed: 1},
		HalfCellState{Couple: VanadiumNegativeTableII(), COxBulk: 1, CRedBulk: 2000, Temperature: 300, KmOx: 1, KmRed: 1},
	)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, ocv, 1.648, 0.01, "Table II OCV")
}

func TestNernstErrors(t *testing.T) {
	if _, err := NernstPotential(VanadiumNegative(), 0, 1, 1); err == nil {
		t.Fatal("zero temperature must error")
	}
	if _, err := NernstPotential(VanadiumNegative(), 300, -1, 1); err == nil {
		t.Fatal("negative concentration must error")
	}
	if _, err := OpenCircuitVoltage(HalfCellState{Couple: VanadiumPositive(), Temperature: 300},
		HalfCellState{Couple: VanadiumNegative(), COxBulk: 1, CRedBulk: 1, Temperature: 300}); err == nil {
		t.Fatal("bad positive state must error")
	}
}

func TestArrheniusScaling(t *testing.T) {
	c := VanadiumNegative()
	// Monotone increase with T.
	if !(c.K0(310) > c.K0(300) && c.K0(300) > c.K0(290)) {
		t.Fatal("k0 must increase with temperature")
	}
	if !(c.DOx(310) > c.DOx(300)) {
		t.Fatal("D must increase with temperature")
	}
	// Identity at the reference temperature.
	approx(t, c.K0(c.TRef), c.K0Ref, 1e-12, "k0 at TRef")
	approx(t, c.DRed(c.TRef), c.DRedRef, 1e-12, "D at TRef")
	// Known ratio: Ea=22 kJ/mol from 300 to 310 K gives exp(22000/8.314*(1/300-1/310)) ~ 1.329.
	r := c.K0(310) / c.K0(300)
	want := math.Exp(22e3 / units.GasConstant * (1.0/300 - 1.0/310))
	approx(t, r, want, 1e-9, "Arrhenius ratio")
	if want < 1.25 || want > 1.45 {
		t.Fatalf("10 K kinetics boost %g outside the 25-45%% band that underlies the paper's 23%% claim", want)
	}
}

func validHalf() HalfCellState {
	return HalfCellState{
		Couple:      VanadiumPositiveTableII(),
		COxBulk:     2000,
		CRedBulk:    1,
		Temperature: 300,
		KmOx:        4e-5,
		KmRed:       4e-5,
	}
}

func TestExchangeCurrentDensity(t *testing.T) {
	h := validHalf()
	// i0 = F k0 COx^0.5 CRed^0.5 = 96485*4.67e-5*sqrt(2000*1) ~ 201.5 A/m2.
	approx(t, h.ExchangeCurrentDensity(), 96485.33212*4.67e-5*math.Sqrt(2000), 1e-6, "i0")
	// i0 grows with temperature (Arrhenius k0).
	h2 := h
	h2.Temperature = 320
	if h2.ExchangeCurrentDensity() <= h.ExchangeCurrentDensity() {
		t.Fatal("i0 must increase with T")
	}
}

func TestLimitingCurrent(t *testing.T) {
	h := validHalf()
	// Reduction consumes Ox: iL = F km COx = 96485*4e-5*2000 ~ 7719 A/m2.
	approx(t, h.LimitingCurrentDensity(Reduction), 96485.33212*4e-5*2000, 1e-9, "iL red")
	// Oxidation consumes Red (only 1 mol/m3 here): tiny limit.
	approx(t, h.LimitingCurrentDensity(Oxidation), 96485.33212*4e-5*1, 1e-9, "iL ox")
}

func TestSurfaceConcentrations(t *testing.T) {
	h := validHalf()
	iL := h.LimitingCurrentDensity(Reduction)
	cOx, cRed, err := h.SurfaceConcentrations(iL/2, Reduction)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, cOx, 1000, 1e-9, "half the limit leaves half the bulk")
	if cRed <= h.CRedBulk {
		t.Fatal("product species must accumulate at the surface")
	}
	// Beyond the limit: error.
	if _, _, err := h.SurfaceConcentrations(1.01*iL, Reduction); !errors.Is(err, ErrMassTransportLimited) {
		t.Fatalf("expected ErrMassTransportLimited, got %v", err)
	}
	if _, _, err := h.SurfaceConcentrations(-1, Reduction); err == nil {
		t.Fatal("negative magnitude must error")
	}
}

func TestOverpotentialSigns(t *testing.T) {
	h := validHalf()
	iL := h.LimitingCurrentDensity(Reduction)
	etaRed, err := h.Overpotential(iL/4, Reduction)
	if err != nil {
		t.Fatal(err)
	}
	if etaRed >= 0 {
		t.Fatalf("reduction overpotential must be negative, got %g", etaRed)
	}
	// Oxidation on the anode-style state.
	a := HalfCellState{
		Couple: VanadiumNegativeTableII(), COxBulk: 1, CRedBulk: 2000,
		Temperature: 300, KmOx: 4e-5, KmRed: 4e-5,
	}
	etaOx, err := a.Overpotential(a.LimitingCurrentDensity(Oxidation)/4, Oxidation)
	if err != nil {
		t.Fatal(err)
	}
	if etaOx <= 0 {
		t.Fatalf("oxidation overpotential must be positive, got %g", etaOx)
	}
	// Zero current: zero overpotential.
	if eta, err := h.Overpotential(0, Reduction); err != nil || eta != 0 {
		t.Fatalf("eta(0) = %g, err %v", eta, err)
	}
}

func TestOverpotentialConsistentWithButlerVolmer(t *testing.T) {
	h := validHalf()
	i := h.LimitingCurrentDensity(Reduction) / 3
	eta, err := h.Overpotential(i, Reduction)
	if err != nil {
		t.Fatal(err)
	}
	cOxS, cRedS, err := h.SurfaceConcentrations(i, Reduction)
	if err != nil {
		t.Fatal(err)
	}
	back := h.CurrentDensity(eta, cOxS, cRedS)
	approx(t, back, -i, 1e-8, "BV round trip (reduction current is negative)")
}

func TestOverpotentialMonotoneInCurrent(t *testing.T) {
	h := validHalf()
	iL := h.LimitingCurrentDensity(Reduction)
	prev := 0.0
	for _, frac := range []float64{0.1, 0.3, 0.5, 0.7, 0.9, 0.99} {
		eta, err := h.Overpotential(frac*iL, Reduction)
		if err != nil {
			t.Fatalf("frac %g: %v", frac, err)
		}
		if eta >= prev {
			t.Fatalf("overpotential magnitude must grow with current: eta(%g)=%g prev=%g", frac, eta, prev)
		}
		prev = eta
	}
}

func TestOverpotentialDivergesNearLimit(t *testing.T) {
	h := validHalf()
	iL := h.LimitingCurrentDensity(Reduction)
	etaHalf, _ := h.Overpotential(0.5*iL, Reduction)
	etaNear, err := h.Overpotential(0.999*iL, Reduction)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(etaNear) < 2*math.Abs(etaHalf) {
		t.Fatalf("near-limit overpotential %g should dwarf mid-range %g", etaNear, etaHalf)
	}
}

func TestBreakdownAdds(t *testing.T) {
	h := validHalf()
	i := 0.6 * h.LimitingCurrentDensity(Reduction)
	bd, err := h.Breakdown(i, Reduction)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, bd.ChargeTransfer+bd.MassTransfer, bd.Total, 1e-9, "parts sum to total")
	if bd.MassTransfer >= 0 {
		t.Fatalf("reduction mass-transfer overvoltage must be negative, got %g", bd.MassTransfer)
	}
	if bd.ChargeTransfer >= 0 {
		t.Fatalf("reduction charge-transfer overvoltage must be negative, got %g", bd.ChargeTransfer)
	}
}

func TestHotterElectrodeNeedsLessOverpotential(t *testing.T) {
	// The mechanism behind the paper's 23% hot-operation gain: at fixed
	// current, a hotter electrode (faster kinetics) needs less driving
	// overpotential.
	h := validHalf()
	i := 0.5 * h.LimitingCurrentDensity(Reduction)
	etaCold, err := h.Overpotential(i, Reduction)
	if err != nil {
		t.Fatal(err)
	}
	hot := h
	hot.Temperature = 310
	// The mass-transfer coefficient tracks the diffusion coefficient as
	// km ~ D^(2/3) (Leveque), which is how the flow-cell layer feeds the
	// temperature into the hydrodynamics.
	dRatio := hot.Couple.DOx(310) / hot.Couple.DOx(300)
	hot.KmOx *= math.Pow(dRatio, 2.0/3.0)
	hot.KmRed *= math.Pow(dRatio, 2.0/3.0)
	etaHot, err := hot.Overpotential(i, Reduction)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(etaHot) >= math.Abs(etaCold) {
		t.Fatalf("hot |eta| %g must be below cold |eta| %g", etaHot, etaCold)
	}
}

func TestValidateRejectsBadStates(t *testing.T) {
	good := validHalf()
	cases := []func(*HalfCellState){
		func(h *HalfCellState) { h.COxBulk = 0 },
		func(h *HalfCellState) { h.CRedBulk = -5 },
		func(h *HalfCellState) { h.Temperature = 0 },
		func(h *HalfCellState) { h.KmOx = 0 },
		func(h *HalfCellState) { h.KmRed = -1 },
		func(h *HalfCellState) { h.Couple.Alpha = 1.5 },
		func(h *HalfCellState) { h.Couple.N = 0 },
		func(h *HalfCellState) { h.Couple.K0Ref = 0 },
	}
	for k, mutate := range cases {
		h := good
		mutate(&h)
		if err := h.Validate(); err == nil {
			t.Errorf("case %d: expected validation error", k)
		}
	}
	if err := good.Validate(); err != nil {
		t.Fatalf("good state rejected: %v", err)
	}
}

func TestElectrolyteProperties(t *testing.T) {
	e := VanadiumElectrolyte()
	if err := e.Validate(); err != nil {
		t.Fatal(err)
	}
	// Table I/II values at reference.
	approx(t, e.Density(300), 1260, 1e-12, "density")
	approx(t, e.Viscosity(300), 2.53e-3, 1e-9, "viscosity at TRef")
	// Viscosity decreases, conductivity increases with T.
	if e.Viscosity(320) >= e.Viscosity(300) {
		t.Fatal("viscosity must fall with T")
	}
	if e.Conductivity(320) <= e.Conductivity(300) {
		t.Fatal("conductivity must rise with T")
	}
	// Clamp far below reference stays positive.
	if e.Conductivity(100) <= 0 {
		t.Fatal("conductivity clamp failed")
	}
	bad := e
	bad.DensityRef = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("invalid electrolyte accepted")
	}
}

func TestModeString(t *testing.T) {
	if Oxidation.String() != "oxidation" || Reduction.String() != "reduction" {
		t.Fatal("Mode.String")
	}
	if Mode(9).String() == "" {
		t.Fatal("unknown mode should still format")
	}
}
