package echem

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func quickConfig(seed int64, max int) *quick.Config {
	return &quick.Config{MaxCount: max, Rand: rand.New(rand.NewSource(seed))}
}

// randomState maps raw quick inputs onto a physically valid half-cell.
func randomState(cOxRaw, cRedRaw, tRaw, kmRaw uint8, pos bool) HalfCellState {
	couple := VanadiumNegative()
	if pos {
		couple = VanadiumPositive()
	}
	return HalfCellState{
		Couple:      couple,
		COxBulk:     1 + float64(cOxRaw)*10,  // 1..2551 mol/m3
		CRedBulk:    1 + float64(cRedRaw)*10, //
		Temperature: 280 + float64(tRaw)/4,   // 280..344 K
		KmOx:        1e-6 + float64(kmRaw)*1e-6,
		KmRed:       1e-6 + float64(kmRaw)*1e-6,
	}
}

// TestQuickBVMonotoneInEta: the Butler-Volmer current is strictly
// increasing in the overpotential for any valid state and surface
// concentrations — the property the operating-point solvers rely on to
// bracket roots.
func TestQuickBVMonotoneInEta(t *testing.T) {
	f := func(cOx, cRed, tr, km uint8, pos bool, e1Raw, e2Raw int8) bool {
		h := randomState(cOx, cRed, tr, km, pos)
		eta1 := float64(e1Raw) / 400 // +-0.32 V
		eta2 := float64(e2Raw) / 400
		if eta1 == eta2 {
			return true
		}
		if eta1 > eta2 {
			eta1, eta2 = eta2, eta1
		}
		// Any positive surface concentrations preserve monotonicity.
		cOxS := h.COxBulk * 0.7
		cRedS := h.CRedBulk * 0.8
		return h.CurrentDensity(eta2, cOxS, cRedS) > h.CurrentDensity(eta1, cOxS, cRedS)
	}
	if err := quick.Check(f, quickConfig(11, 300)); err != nil {
		t.Error(err)
	}
}

// TestQuickOverpotentialRoundTrip: solving for eta at a random feasible
// current and evaluating BV at the implied surface state recovers the
// current.
func TestQuickOverpotentialRoundTrip(t *testing.T) {
	f := func(cOx, cRed, tr, km uint8, pos bool, fracRaw uint8) bool {
		h := randomState(cOx, cRed, tr, km, pos)
		mode := Reduction
		frac := 0.02 + 0.9*float64(fracRaw)/255
		i := frac * h.LimitingCurrentDensity(mode)
		eta, err := h.Overpotential(i, mode)
		if err != nil {
			return false
		}
		cOxS, cRedS, err := h.SurfaceConcentrations(i, mode)
		if err != nil {
			return false
		}
		back := -h.CurrentDensity(eta, cOxS, cRedS) // reduction magnitude
		return math.Abs(back-i) <= 1e-6*(1+i)
	}
	if err := quick.Check(f, quickConfig(12, 150)); err != nil {
		t.Error(err)
	}
}

// TestQuickNernstAntisymmetry: swapping Ox and Red concentrations flips
// the sign of the concentration term.
func TestQuickNernstAntisymmetry(t *testing.T) {
	f := func(aRaw, bRaw uint16, tr uint8) bool {
		c := VanadiumPositive()
		ca := 1 + float64(aRaw)
		cb := 1 + float64(bRaw)
		temp := 280 + float64(tr)/4
		e1, err1 := NernstPotential(c, temp, ca, cb)
		e2, err2 := NernstPotential(c, temp, cb, ca)
		if err1 != nil || err2 != nil {
			return false
		}
		// (E1 - E0) == -(E2 - E0)
		return math.Abs((e1-c.E0)+(e2-c.E0)) < 1e-12
	}
	if err := quick.Check(f, quickConfig(13, 300)); err != nil {
		t.Error(err)
	}
}

// TestQuickArrheniusMonotone: all temperature-scaled parameters increase
// with temperature for positive activation energies.
func TestQuickArrheniusMonotone(t *testing.T) {
	f := func(t1Raw, dtRaw uint8, pos bool) bool {
		c := VanadiumNegative()
		if pos {
			c = VanadiumPositiveTableII()
		}
		t1 := 273 + float64(t1Raw)/4
		t2 := t1 + 0.1 + float64(dtRaw)/10
		return c.K0(t2) > c.K0(t1) && c.DOx(t2) > c.DOx(t1) && c.DRed(t2) > c.DRed(t1)
	}
	if err := quick.Check(f, quickConfig(14, 300)); err != nil {
		t.Error(err)
	}
}

// TestQuickLimitingCurrentScalesLinearly in both km and concentration.
func TestQuickLimitingCurrentScalesLinearly(t *testing.T) {
	f := func(cOx, cRed, tr, km uint8, pos bool) bool {
		h := randomState(cOx, cRed, tr, km, pos)
		base := h.LimitingCurrentDensity(Reduction)
		h2 := h
		h2.KmOx *= 2
		h2.COxBulk *= 3
		return math.Abs(h2.LimitingCurrentDensity(Reduction)-6*base) < 1e-9*base
	}
	if err := quick.Check(f, quickConfig(15, 300)); err != nil {
		t.Error(err)
	}
}
