package echem

import (
	"fmt"
	"math"

	"bright/internal/units"
)

// NernstPotential returns the equilibrium electrode potential (V) of a
// couple at temperature t (K) with bulk concentrations cOx and cRed
// (mol/m3), equations (4)-(5) of the paper:
//
//	E = E0 + (R T)/(n F) * ln(C_Ox / C_Red)
//
// Concentration units cancel in the ratio. Both concentrations must be
// positive; the caller is responsible for clamping trace species to a
// small positive floor (the fixtures use 1 mol/m3, as Table II does).
func NernstPotential(c Couple, t, cOx, cRed float64) (float64, error) {
	if t <= 0 {
		return 0, fmt.Errorf("echem: nonpositive temperature %g K", t)
	}
	if cOx <= 0 || cRed <= 0 {
		return 0, fmt.Errorf("echem: nonpositive concentration (Ox=%g, Red=%g)", cOx, cRed)
	}
	return c.E0 + units.GasConstant*t/(float64(c.N)*units.Faraday)*math.Log(cOx/cRed), nil
}

// OpenCircuitVoltage returns the cell OCV U = E_pos - E_neg for the given
// positive and negative half-cell states.
func OpenCircuitVoltage(pos, neg HalfCellState) (float64, error) {
	ePos, err := NernstPotential(pos.Couple, pos.Temperature, pos.COxBulk, pos.CRedBulk)
	if err != nil {
		return 0, fmt.Errorf("positive electrode: %w", err)
	}
	eNeg, err := NernstPotential(neg.Couple, neg.Temperature, neg.COxBulk, neg.CRedBulk)
	if err != nil {
		return 0, fmt.Errorf("negative electrode: %w", err)
	}
	return ePos - eNeg, nil
}

// StandardOCV returns E0_pos - E0_neg, the standard open-circuit voltage
// of the pair (1.25 V for the all-vanadium system with Table I data,
// matching the paper's quoted U0).
func StandardOCV(pos, neg Couple) float64 { return pos.E0 - neg.E0 }

// ThermalVoltage returns RT/F at temperature t, the natural scale of all
// the exponential terms (25.7 mV at 25 C).
func ThermalVoltage(t float64) float64 { return units.GasConstant * t / units.Faraday }
