package experiments

import "testing"

func TestE14ElectrodeCoverage(t *testing.T) {
	res, err := E14ElectrodeCoverage()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	// Full coverage: unity factor and the Fig. 7 headline current.
	first := res.Rows[0]
	if first.ConstrictionFactor != 1 {
		t.Fatalf("full coverage factor %g", first.ConstrictionFactor)
	}
	if first.ArrayA < 5.2 || first.ArrayA > 7 {
		t.Fatalf("full coverage current %g", first.ArrayA)
	}
	// Less coverage: more constriction, less current — monotone.
	for k := 1; k < len(res.Rows); k++ {
		if res.Rows[k].ConstrictionFactor <= res.Rows[k-1].ConstrictionFactor {
			t.Fatalf("constriction not monotone at row %d", k)
		}
		if res.Rows[k].ArrayA >= res.Rows[k-1].ArrayA {
			t.Fatalf("current not monotone at row %d", k)
		}
	}
	// Quarter coverage remains a working (if degraded) supply.
	last := res.Rows[3]
	if last.ConstrictionFactor < 2 || last.ConstrictionFactor > 5 {
		t.Fatalf("quarter-coverage factor %g outside expectation", last.ConstrictionFactor)
	}
	if last.ArrayA < 2 {
		t.Fatalf("quarter-coverage current %g collapsed", last.ArrayA)
	}
}
