package experiments

import "testing"

func TestE15Manifold(t *testing.T) {
	res, err := E15Manifold()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	ideal, u, z := res.Rows[0], res.Rows[1], res.Rows[2]
	if ideal.MaldistributionPct != 0 {
		t.Fatalf("ideal maldistribution %g", ideal.MaldistributionPct)
	}
	// Z-type beats U-type on every axis.
	if z.MaldistributionPct >= u.MaldistributionPct {
		t.Fatalf("Z maldistribution %.1f%% should beat U %.1f%%",
			z.MaldistributionPct, u.MaldistributionPct)
	}
	if z.PeakC > u.PeakC {
		t.Fatalf("Z peak %.2f C should not exceed U %.2f C", z.PeakC, u.PeakC)
	}
	if z.ArrayA < u.ArrayA {
		t.Fatalf("Z current %.3f A should not fall below U %.3f A", z.ArrayA, u.ArrayA)
	}
	// Both remain close to ideal electrically (the km ~ Q^(1/3) scaling
	// is forgiving of flow imbalance): within 2%.
	if (ideal.ArrayA-u.ArrayA)/ideal.ArrayA > 0.02 {
		t.Fatalf("U-type electrical penalty too large: %.3f vs %.3f", u.ArrayA, ideal.ArrayA)
	}
	// Thermal penalty of U-type is measurable but bounded.
	if d := u.PeakC - ideal.PeakC; d <= 0 || d > 3 {
		t.Fatalf("U-type thermal penalty %.2f K outside expectation", d)
	}
}
