package experiments

import (
	"math"
	"testing"
)

func TestFig3ValidationWithinTenPercent(t *testing.T) {
	// The paper's validation criterion: model within 10% of the
	// experimental reference at every flow rate.
	curves, err := Fig3(10)
	if err != nil {
		t.Fatal(err)
	}
	if len(curves) != 4 {
		t.Fatalf("expected 4 flow rates, got %d", len(curves))
	}
	for _, c := range curves {
		if err := c.Model.Check(); err != nil {
			t.Fatal(err)
		}
		if err := c.ModelFVM.Check(); err != nil {
			t.Fatal(err)
		}
		if err := c.Reference.Check(); err != nil {
			t.Fatal(err)
		}
		if c.MaxErrModel > 0.10 {
			t.Errorf("%g uL/min: correlation model deviates %.1f%% (>10%%)",
				c.FlowULMin, 100*c.MaxErrModel)
		}
		if c.MaxErrFVM > 0.10 {
			t.Errorf("%g uL/min: FVM model deviates %.1f%% (>10%%)",
				c.FlowULMin, 100*c.MaxErrFVM)
		}
		if c.MaxErrPaths > 0.10 {
			t.Errorf("%g uL/min: solver paths disagree by %.1f%%",
				c.FlowULMin, 100*c.MaxErrPaths)
		}
	}
}

func TestFig3LimitingCurrentOrderAndScaling(t *testing.T) {
	curves, err := Fig3(6)
	if err != nil {
		t.Fatal(err)
	}
	// Limiting currents ordered with flow and scaling ~Q^(1/3).
	for k := 1; k < len(curves); k++ {
		if curves[k].LimitingCurrentMACM2 <= curves[k-1].LimitingCurrentMACM2 {
			t.Fatalf("limiting currents not increasing with flow")
		}
	}
	r := curves[3].LimitingCurrentMACM2 / curves[0].LimitingCurrentMACM2
	if math.Abs(r-math.Cbrt(120)) > 0.15*math.Cbrt(120) {
		t.Fatalf("iL ratio %.2f deviates from 120^(1/3)", r)
	}
	// Magnitudes as published: lowest flow collapses near ~12, highest
	// beyond the 50 mA/cm2 axis.
	if curves[0].LimitingCurrentMACM2 < 8 || curves[0].LimitingCurrentMACM2 > 18 {
		t.Fatalf("2.5 uL/min iL %.1f outside published feature band", curves[0].LimitingCurrentMACM2)
	}
	if curves[3].LimitingCurrentMACM2 < 50 {
		t.Fatalf("300 uL/min iL %.1f should exceed the 50 mA/cm2 axis", curves[3].LimitingCurrentMACM2)
	}
}

func TestFig3Args(t *testing.T) {
	if _, err := Fig3(2); err == nil {
		t.Fatal("tiny sweep accepted")
	}
}

func TestFig7Headlines(t *testing.T) {
	res, err := Fig7(20)
	if err != nil {
		t.Fatal(err)
	}
	if err := res.Curve.Check(); err != nil {
		t.Fatal(err)
	}
	// OCV intercept ~1.6-1.7 V (Fig. 7 y-axis tops at 1.6).
	if res.OCV < 1.55 || res.OCV > 1.75 {
		t.Fatalf("OCV %.3f outside band", res.OCV)
	}
	// 6 A at 1 V within 15%.
	if math.Abs(res.CurrentAt1V-6.0) > 0.9 {
		t.Fatalf("I(1V) = %.2f A vs paper 6 A", res.CurrentAt1V)
	}
	if math.Abs(res.PowerAt1V-res.CurrentAt1V*1.0) > 1e-9 {
		t.Fatal("P != V*I at the 1 V point")
	}
	// Monotone decreasing V-I.
	for k := 1; k < len(res.Curve.Y); k++ {
		if res.Curve.Y[k] >= res.Curve.Y[k-1] {
			t.Fatal("V-I not monotone")
		}
	}
	// The swept maximum-power point sits near the 1 V operating point
	// for this chemistry (within sweep resolution).
	if res.PeakPowerW < 0.98*res.PowerAt1V || res.PeakPowerVoltage > 1.2 {
		t.Fatalf("peak power %.2f W at %.2f V inconsistent", res.PeakPowerW, res.PeakPowerVoltage)
	}
	if _, err := Fig7(2); err == nil {
		t.Fatal("tiny sweep accepted")
	}
}

func TestFig8Band(t *testing.T) {
	res, err := Fig8()
	if err != nil {
		t.Fatal(err)
	}
	if res.MinCacheV < 0.93 || res.MinCacheV > 0.995 {
		t.Fatalf("min cache V %.4f outside Fig. 8 band", res.MinCacheV)
	}
	if res.MaxV > res.Supply+1e-9 {
		t.Fatal("voltage above supply")
	}
	if res.TotalLoadA < 1.5 || res.TotalLoadA > 3.5 {
		t.Fatalf("cache load %.2f A outside floorplan band", res.TotalLoadA)
	}
}

func TestFig9Band(t *testing.T) {
	res, err := Fig9(676, 27)
	if err != nil {
		t.Fatal(err)
	}
	// Paper: 41 C peak; our compact model must land within a few C.
	if res.PeakC < 36 || res.PeakC > 44 {
		t.Fatalf("peak %.1f C outside Fig. 9 band", res.PeakC)
	}
	if res.OutletC <= 27 {
		t.Fatal("outlet must be warmer than inlet")
	}
	if res.TotalPowerW < 40 || res.TotalPowerW > 120 {
		t.Fatalf("chip power %.1f W outside envelope", res.TotalPowerW)
	}
}

func TestS1CachePower(t *testing.T) {
	res, err := S1CachePower()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Powered {
		t.Fatalf("caches not powered: %+v", res)
	}
	if math.Abs(res.ArrayCurrentA-6.0) > 0.9 {
		t.Fatalf("array current %.2f A vs paper 6 A", res.ArrayCurrentA)
	}
	if res.DeliveredW >= res.ArrayPowerW {
		t.Fatal("VRM cannot create energy")
	}
	if res.CacheAreaCM2 < 1.5 || res.CacheAreaCM2 > 3.0 {
		t.Fatalf("cache area %.2f cm2 outside floorplan band", res.CacheAreaCM2)
	}
}

func TestS2Hydraulics(t *testing.T) {
	res, err := S2Hydraulics()
	if err != nil {
		t.Fatal(err)
	}
	// Paper band for the mean velocity (quotes 1.4 m/s).
	if res.MeanVelocityMS < 1.3 || res.MeanVelocityMS > 1.8 {
		t.Fatalf("velocity %.2f m/s outside band", res.MeanVelocityMS)
	}
	// Our laminar-consistent numbers (documented discrepancy vs the
	// paper's 1.5 bar/cm / 4.4 W).
	if res.GradientBarPerCM <= 0 || res.GradientBarPerCM > 1.0 {
		t.Fatalf("gradient %.3f bar/cm outside self-consistent laminar range", res.GradientBarPerCM)
	}
	if res.PumpPowerW <= 0 || res.PumpPowerW > res.PaperPumpPowerW {
		t.Fatalf("pump power %.2f W outside (0, paper value]", res.PumpPowerW)
	}
	if !res.GenerationExceedsPumping {
		t.Fatal("the net-energy claim must hold")
	}
}

func TestS3NominalGain(t *testing.T) {
	res, err := S3TempSensitivityNominal()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: at most ~4%.
	if res.CurrentGainPct <= 0 || res.CurrentGainPct > 5 {
		t.Fatalf("nominal coupling gain %.2f%% outside (0, 5%%]", res.CurrentGainPct)
	}
	if res.CellTempC < 27 || res.CellTempC > 35 {
		t.Fatalf("converged cell temperature %.1f C implausible", res.CellTempC)
	}
}

func TestS4HotOperation(t *testing.T) {
	res, err := S4HotOperation()
	if err != nil {
		t.Fatal(err)
	}
	// Paper: "up to 23%". Accept a generous band around it for the
	// low-flow case; the hot-inlet reading lands lower.
	if res.LowFlowGainPct < 12 || res.LowFlowGainPct > 32 {
		t.Fatalf("low-flow gain %.1f%% outside ~23%% band", res.LowFlowGainPct)
	}
	if res.HotInletGainPct < 8 || res.HotInletGainPct > 30 {
		t.Fatalf("hot-inlet gain %.1f%% outside band", res.HotInletGainPct)
	}
	if res.LowFlowCellTempC < 32 {
		t.Fatalf("low-flow electrolyte %.1f C should be well above inlet", res.LowFlowCellTempC)
	}
}

func TestAblationSolverPath(t *testing.T) {
	rows, err := AblationSolverPath()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 9 {
		t.Fatalf("expected 9 rows, got %d", len(rows))
	}
	for _, r := range rows {
		if r.RelDiff > 0.10 {
			t.Errorf("paths diverge %.1f%% at q=%g frac=%.2f", 100*r.RelDiff, r.FlowULMin, r.FracOfLimit)
		}
	}
}

func TestAblationGridResolution(t *testing.T) {
	rows, err := AblationGridResolution()
	if err != nil {
		t.Fatal(err)
	}
	// The default 88x64 grid must be within 1 K of the finest grid.
	var def GridResolutionRow
	for _, r := range rows {
		if r.NX == 88 {
			def = r
		}
	}
	if def.NX == 0 {
		t.Fatal("default grid row missing")
	}
	if def.DeltaFromFinest > 1.0 {
		t.Fatalf("default grid off by %.2f K from finest", def.DeltaFromFinest)
	}
}

func TestAblationVRMPlacement(t *testing.T) {
	rows, err := AblationVRMPlacement()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("expected 2 strategies, got %d", len(rows))
	}
	if rows[0].MinCacheV <= rows[1].MinCacheV {
		t.Fatalf("distributed placement must beat single site: %.4f vs %.4f",
			rows[0].MinCacheV, rows[1].MinCacheV)
	}
	if rows[0].NSites <= rows[1].NSites {
		t.Fatal("site counts inconsistent")
	}
}

func TestAblationChannelCount(t *testing.T) {
	rows, err := AblationChannelCount()
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("expected 3 design points, got %d", len(rows))
	}
	// Fewer channels at fixed flow -> faster streams -> higher pumping.
	if rows[0].PumpPowerW <= rows[2].PumpPowerW {
		t.Fatalf("44-channel pumping %.2f W should exceed 176-channel %.2f W",
			rows[0].PumpPowerW, rows[2].PumpPowerW)
	}
	for _, r := range rows {
		if r.NetW <= 0 {
			t.Errorf("%d channels: net %.2f W not positive", r.NChannels, r.NetW)
		}
	}
}

func TestSeriesCheck(t *testing.T) {
	if err := (Series{Name: "a", X: []float64{1}, Y: []float64{2}}).Check(); err != nil {
		t.Fatal(err)
	}
	if err := (Series{Name: "b", X: []float64{1}, Y: nil}).Check(); err == nil {
		t.Fatal("ragged series accepted")
	}
	if err := (Series{Name: "c"}).Check(); err == nil {
		t.Fatal("empty series accepted")
	}
}
