package experiments

import (
	"fmt"
	"strings"

	"bright/internal/flowcell"
	"bright/internal/units"
)

// TableRow is one parameter of a reproduced paper table, carrying both
// the paper's quoted value and the value the corresponding fixture in
// this repository actually uses.
type TableRow struct {
	Parameter string
	Paper     string
	Fixture   string
	// Match reports whether the fixture realizes the paper value
	// exactly (input tables must match; derived values may not).
	Match bool
}

// Table is a reproduced parameter table.
type Table struct {
	Name string
	Rows []TableRow
}

// Format renders the table for terminal output.
func (t Table) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "%s\n", t.Name)
	width := 0
	for _, r := range t.Rows {
		if len(r.Parameter) > width {
			width = len(r.Parameter)
		}
	}
	for _, r := range t.Rows {
		mark := "ok"
		if !r.Match {
			mark = "NOTE"
		}
		fmt.Fprintf(&b, "  %-*s  paper: %-18s fixture: %-18s %s\n",
			width, r.Parameter, r.Paper, r.Fixture, mark)
	}
	return b.String()
}

// AllMatch reports whether every row matches.
func (t Table) AllMatch() bool {
	for _, r := range t.Rows {
		if !r.Match {
			return false
		}
	}
	return true
}

func row(param, paper string, fixture float64, format string, want float64) TableRow {
	diff := fixture - want
	if diff < 0 {
		diff = -diff
	}
	scale := want
	if scale < 0 {
		scale = -scale
	}
	if scale == 0 {
		scale = 1
	}
	return TableRow{
		Parameter: param,
		Paper:     paper,
		Fixture:   fmt.Sprintf(format, fixture),
		Match:     diff <= 1e-9*scale,
	}
}

// TableI returns the paper's Table I (validation flow cell parameters)
// against the KjeangCell fixture.
func TableI() Table {
	c := flowcell.KjeangCell(60)
	return Table{
		Name: "Table I — validation redox flow cell (Kjeang et al. 2007)",
		Rows: []TableRow{
			row("channel length (mm)", "33", units.MToMM(c.Channel.Length), "%.0f", 33),
			row("channel width (mm)", "2", units.MToMM(c.Channel.Width), "%.0f", 2),
			row("channel height (um)", "150", units.MToUM(c.Channel.Height), "%.0f", 150),
			row("density (kg/m3)", "1260", c.Electrolyte.DensityRef, "%.0f", 1260),
			row("dynamic viscosity (mPa.s)", "2.53", c.Electrolyte.ViscosityRef*1e3, "%.2f", 2.53),
			row("anode E0 (V)", "-0.255", c.Anode.Couple.E0, "%.3f", -0.255),
			row("cathode E0 (V)", "0.991", c.Cathode.Couple.E0, "%.3f", 0.991),
			row("anode C*Ox (mol/m3)", "80", c.Anode.COxInlet, "%.0f", 80),
			row("anode C*Red (mol/m3)", "920", c.Anode.CRedInlet, "%.0f", 920),
			row("cathode C*Ox (mol/m3)", "992", c.Cathode.COxInlet, "%.0f", 992),
			row("cathode C*Red (mol/m3)", "8", c.Cathode.CRedInlet, "%.0f", 8),
			row("anode D (1e-10 m2/s)", "1.7", c.Anode.Couple.DOxRef*1e10, "%.1f", 1.7),
			row("cathode D (1e-10 m2/s)", "1.3", c.Cathode.Couple.DOxRef*1e10, "%.1f", 1.3),
			row("anode k0 (1e-5 m/s)", "2", c.Anode.Couple.K0Ref*1e5, "%.0f", 2),
			row("cathode k0 (1e-5 m/s)", "1", c.Cathode.Couple.K0Ref*1e5, "%.0f", 1),
		},
	}
}

// TableII returns the paper's Table II (POWER7+ flow-cell array
// parameters) against the Power7Array fixture.
func TableII() Table {
	a := flowcell.Power7Array()
	c := a.Cell
	return Table{
		Name: "Table II — microfluidic redox cell array on the POWER7+",
		Rows: []TableRow{
			row("number of channels", "88", float64(a.NChannels), "%.0f", 88),
			row("channel width (um)", "200", units.MToUM(c.Channel.Width), "%.0f", 200),
			row("channel height (um)", "400", units.MToUM(c.Channel.Height), "%.0f", 400),
			row("channel length (mm)", "22", units.MToMM(c.Channel.Length), "%.0f", 22),
			row("total flow (ml/min)", "676", units.M3PerSToMLPerMin(a.TotalFlowRate()), "%.0f", 676),
			row("thermal conductivity (W/mK)", "0.67", c.Electrolyte.ThermalConductivity, "%.2f", 0.67),
			row("thermal capacitance (MJ/m3K)", "4.187", c.Electrolyte.HeatCapacityVol*1e-6, "%.3f", 4.187),
			row("inlet temperature (K)", "300", c.Temperature, "%.0f", 300),
			row("density (kg/m3)", "1260", c.Electrolyte.DensityRef, "%.0f", 1260),
			row("dynamic viscosity (mPa.s)", "2.53", c.Electrolyte.ViscosityRef*1e3, "%.2f", 2.53),
			row("anode E0 (V)", "-0.255", c.Anode.Couple.E0, "%.3f", -0.255),
			row("cathode E0 (V)", "1.0", c.Cathode.Couple.E0, "%.1f", 1.0),
			row("anode C*Ox (mol/m3)", "1", c.Anode.COxInlet, "%.0f", 1),
			row("anode C*Red (mol/m3)", "2000", c.Anode.CRedInlet, "%.0f", 2000),
			row("cathode C*Ox (mol/m3)", "2000", c.Cathode.COxInlet, "%.0f", 2000),
			row("cathode C*Red (mol/m3)", "1", c.Cathode.CRedInlet, "%.0f", 1),
			row("anode D (1e-10 m2/s)", "4.13", c.Anode.Couple.DOxRef*1e10, "%.2f", 4.13),
			row("cathode D (1e-10 m2/s)", "1.26", c.Cathode.Couple.DOxRef*1e10, "%.2f", 1.26),
			row("anode k0 (1e-5 m/s)", "5.33", c.Anode.Couple.K0Ref*1e5, "%.2f", 5.33),
			row("cathode k0 (1e-5 m/s)", "4.67", c.Cathode.Couple.K0Ref*1e5, "%.2f", 4.67),
		},
	}
}
