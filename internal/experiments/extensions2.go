package experiments

import (
	"fmt"

	"bright/internal/cosim"
	"bright/internal/design"
	"bright/internal/flowcell"
	"bright/internal/workload"
)

// E6Result is the round-trip efficiency study (extension E6): the
// secondary-battery figure of merit of the Table II array chemistry at
// 50% state of charge.
type E6Result struct {
	Points []flowcell.RoundTripPoint
	// EffAtHalfLimit is the voltage efficiency at half the limiting
	// current.
	EffAtHalfLimit float64
	// OCV at 50% SOC (the standard cell voltage, ~1.25 V).
	OCV float64
}

// E6RoundTrip sweeps symmetric charge/discharge currents on the
// Table II channel at 50% SOC.
func E6RoundTrip() (*E6Result, error) {
	cell := flowcell.Power7Array().Cell
	pts, err := cell.RoundTripEfficiency(0.5, 10, 0.9)
	if err != nil {
		return nil, err
	}
	half, err := cell.AtStateOfCharge(0.5)
	if err != nil {
		return nil, err
	}
	ocv, err := half.OpenCircuitVoltage()
	if err != nil {
		return nil, err
	}
	res := &E6Result{Points: pts, OCV: ocv}
	// The sweep is uniform in current; half the limit is near the
	// middle point.
	res.EffAtHalfLimit = pts[len(pts)/2].Efficiency
	return res, nil
}

// E7Result is the workload transient study (extension E7): a bursty
// chip drives the temperature, and the array output breathes with it —
// the energy-proportional coupling the paper's introduction motivates.
type E7Result struct {
	Scenario *cosim.ScenarioResult
	// SwingPct is the array-current swing over the burst cycle.
	SwingPct float64
	// MaxPeakC must stay within the steady Fig. 9 envelope.
	MaxPeakC float64
}

// E7Workload runs a 50% duty, 0.4 s period burst at the nominal
// condition.
func E7Workload() (*E7Result, error) {
	res, err := cosim.RunWorkload(cosim.ScenarioConfig{
		Trace:           workload.Burst(0.4, 0.5),
		TotalFlowMLMin:  676,
		InletTempC:      27,
		TerminalVoltage: 1.0,
		Periods:         2,
	})
	if err != nil {
		return nil, err
	}
	return &E7Result{
		Scenario: res,
		SwingPct: 100 * (res.ArrayMaxA - res.ArrayMinA) / res.ArrayMinA,
		MaxPeakC: res.MaxPeakC,
	}, nil
}

// E8Result is the design-space exploration (extension E8): how far
// channel geometry alone improves on the Table II point.
type E8Result struct {
	Evaluations []design.Evaluation
	TableII     design.Evaluation
	Best        design.Evaluation
	// GainPct = best net power over Table II net power - 1, in %.
	GainPct float64
}

// E8DesignSpace explores the default grid plus the Table II point.
func E8DesignSpace() (*E8Result, error) {
	evs, err := design.Explore(append(design.DefaultGrid(), design.TableII()),
		676, 27, 1.0, design.DefaultConstraints())
	if err != nil {
		return nil, err
	}
	res := &E8Result{Evaluations: evs}
	found := false
	for _, e := range evs {
		if e.Candidate == design.TableII() {
			res.TableII = e
			found = true
			break
		}
	}
	if !found {
		return nil, fmt.Errorf("experiments: Table II point missing from exploration")
	}
	for _, e := range evs {
		if e.Feasible {
			res.Best = e
			break
		}
	}
	if !res.Best.Feasible {
		return nil, fmt.Errorf("experiments: no feasible design found")
	}
	res.GainPct = 100 * (res.Best.NetPowerW/res.TableII.NetPowerW - 1)
	return res, nil
}

// E9Variation is the manufacturing-variation Monte Carlo (extension
// E9) at a 5% geometric tolerance.
func E9Variation() (*flowcell.VariationResult, error) {
	return flowcell.Power7Array().MonteCarloVariation(1.0, 0.05, 40, 2014)
}
