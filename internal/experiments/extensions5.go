package experiments

import (
	"fmt"

	"bright/internal/flowcell"
	"bright/internal/potential"
)

// E14Result is the electrode-coverage study (extension E14): partial
// side-wall electrodes (a realistic fabrication outcome — seed layers
// rarely plate the full 400 um wall) constrict the ionic current path.
// The charge-conservation field solver (paper eq. (11)) quantifies the
// constriction, and the cell model folds it into the polarization.
type E14Result struct {
	Rows []E14Row
}

// E14Row is one coverage design point.
type E14Row struct {
	Coverage float64
	// ConstrictionFactor from the potential-field solve.
	ConstrictionFactor float64
	// ArrayA at the 1 V rail with this coverage.
	ArrayA float64
}

// E14ElectrodeCoverage sweeps coverages 1.0/0.75/0.5/0.25 on the
// Table II array.
func E14ElectrodeCoverage() (*E14Result, error) {
	res := &E14Result{}
	for _, cov := range []float64{1.0, 0.75, 0.5, 0.25} {
		factor := 1.0
		if cov < 1 {
			var err error
			factor, err = potential.ConstrictionFactor(200e-6, 400e-6, cov, 1)
			if err != nil {
				return nil, fmt.Errorf("E14 coverage %g: %w", cov, err)
			}
		}
		a := flowcell.Power7Array()
		a.Cell.ElectrodeCoverage = cov
		// Partial electrodes also lose wetted area.
		a.Cell.AreaEnhancement = flowcell.Power7ArrayEnhancement * cov
		if a.Cell.AreaEnhancement < 1 {
			a.Cell.AreaEnhancement = 1
		}
		op, err := a.CurrentAtVoltage(1.0)
		if err != nil {
			return nil, fmt.Errorf("E14 coverage %g: %w", cov, err)
		}
		res.Rows = append(res.Rows, E14Row{
			Coverage:           cov,
			ConstrictionFactor: factor,
			ArrayA:             op.Current,
		})
	}
	return res, nil
}
