package experiments

import "testing"

func TestE12BrightSiliconFrontier(t *testing.T) {
	res, err := E12BrightSiliconFrontier()
	if err != nil {
		t.Fatal(err)
	}
	// The paper's Section II: flow-cell power densities are "10-50x
	// lower than the power demand of high-performance processing
	// architectures". Our frontier must land in that decade.
	if res.ElectrochemGainNeeded < 5 || res.ElectrochemGainNeeded > 50 {
		t.Fatalf("electrochemical gain needed %.1fx outside the paper's 10-50x framing",
			res.ElectrochemGainNeeded)
	}
	// The Table II array covers ~10% of the chip; the best geometry
	// roughly doubles that.
	if res.DensityFractionTableII < 0.05 || res.DensityFractionTableII > 0.2 {
		t.Fatalf("Table II frontier fraction %.3f outside expectation", res.DensityFractionTableII)
	}
	if res.DensityFractionBest <= res.DensityFractionTableII {
		t.Fatal("the explored best geometry must beat Table II")
	}
	if res.BestGeometryMaxW <= res.ArrayMaxW {
		t.Fatal("best geometry max power must exceed Table II's")
	}
}

func TestE13ManyCoreSweep(t *testing.T) {
	res, err := E13ManyCoreSweep()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	prevChip, prevFrontier := 1e18, 0.0
	for _, r := range res.Rows {
		// Smaller cores -> less chip power -> closer to bright silicon.
		if r.ChipW >= prevChip {
			t.Fatalf("chip power must fall with core fraction: %.1f W at %.2f", r.ChipW, r.CoreFraction)
		}
		if r.FrontierFraction <= prevFrontier {
			t.Fatalf("frontier fraction must rise as cores shrink")
		}
		prevChip, prevFrontier = r.ChipW, r.FrontierFraction
		// The cache rail stays covered in every tiling (the array has
		// margin on caches; cores are the gap).
		if !r.ArrayCoversCaches {
			t.Fatalf("caches uncovered at core fraction %.2f", r.CoreFraction)
		}
	}
	// Even the most cache-heavy compromise leaves the full chip beyond
	// the Table II array (frontier < 1): prong 2 remains necessary,
	// exactly the paper's conclusion.
	if last := res.Rows[len(res.Rows)-1]; last.FrontierFraction >= 1 {
		t.Fatalf("frontier fraction %.2f should remain below 1", last.FrontierFraction)
	}
}
