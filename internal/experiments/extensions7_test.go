package experiments

import "testing"

func TestE16AirCooledBaseline(t *testing.T) {
	res, err := E16AirCooledBaseline()
	if err != nil {
		t.Fatal(err)
	}
	// The microfluidic solution must hold a large thermal advantage.
	if res.AdvantageK < 20 {
		t.Fatalf("advantage %.1f K too small", res.AdvantageK)
	}
	if res.MicroPeakC > res.AirPeakC {
		t.Fatal("ordering violated")
	}
	// And translate it into power headroom: the microfluidic stack can
	// carry several times more power before 85 C.
	if res.MicroHeadroomW < 2*res.AirHeadroomW {
		t.Fatalf("headroom ratio %.2f too small (micro %.0f W, air %.0f W)",
			res.MicroHeadroomW/res.AirHeadroomW, res.MicroHeadroomW, res.AirHeadroomW)
	}
	if res.AirHeadroomW < 30 || res.AirHeadroomW > 150 {
		t.Fatalf("air headroom %.0f W outside server expectation", res.AirHeadroomW)
	}
}

func TestE17WakeupDroop(t *testing.T) {
	res, err := E17WakeupDroop()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 3 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	// More decap, less droop.
	for k := 1; k < len(res.Rows); k++ {
		if res.Rows[k].DroopMV >= res.Rows[k-1].DroopMV {
			t.Fatalf("droop not monotone in decap")
		}
	}
	// A healthy decap budget (50 nF/mm2) keeps the wake-up droop within
	// ~10% of the rail.
	last := res.Rows[len(res.Rows)-1]
	if last.DroopMV > 120 {
		t.Fatalf("droop %.0f mV at %.0f nF/mm2 too deep", last.DroopMV, last.DecapNFPerMM2)
	}
	if last.WorstV < 0.8 {
		t.Fatalf("rail dipped to %.3f V at the largest decap", last.WorstV)
	}
}

func TestE18RefinedDesign(t *testing.T) {
	res, err := E18RefinedDesign()
	if err != nil {
		t.Fatal(err)
	}
	if !res.Refined.Feasible {
		t.Fatalf("refined design infeasible: %s", res.Refined.Reason)
	}
	if res.GainPct < -0.1 {
		t.Fatalf("refinement degraded the grid best by %.2f%%", -res.GainPct)
	}
	if res.Refined.PeakTempC > 85 {
		t.Fatal("refined design violates the thermal limit")
	}
}

func TestE19CounterFlow(t *testing.T) {
	res, err := E19CounterFlow()
	if err != nil {
		t.Fatal(err)
	}
	if res.UniGradientK <= 0 {
		t.Fatalf("uniflow gradient %g", res.UniGradientK)
	}
	if res.CounterGradientK > 0.7*res.UniGradientK {
		t.Fatalf("counterflow gradient %.3f vs uniflow %.3f", res.CounterGradientK, res.UniGradientK)
	}
	if res.CounterPeakC > res.UniPeakC+0.1 {
		t.Fatalf("counterflow peak %.2f worse than uniflow %.2f", res.CounterPeakC, res.UniPeakC)
	}
}

func TestE20ThermalCap(t *testing.T) {
	res, err := E20ThermalCap()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	// Load fraction falls monotonically with the flow.
	prev := 2.0
	for _, r := range res.Rows {
		if r.MaxLoadFraction > prev {
			t.Fatalf("cap not monotone in flow: %.3f at %.0f ml/min", r.MaxLoadFraction, r.FlowMLMin)
		}
		prev = r.MaxLoadFraction
	}
	// Nominal flow carries the full load at 60 C; a starved 10 ml/min
	// cannot.
	if res.Rows[0].MaxLoadFraction != 1 {
		t.Fatalf("nominal should carry full load")
	}
	if res.Rows[3].MaxLoadFraction >= 0.7 {
		t.Fatalf("10 ml/min cap %.3f too generous", res.Rows[3].MaxLoadFraction)
	}
}
