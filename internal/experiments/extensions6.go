package experiments

import (
	"fmt"

	"bright/internal/cfd"
	"bright/internal/flowcell"
	"bright/internal/hydro"
	"bright/internal/thermal"
	"bright/internal/units"
)

// E15Result is the manifold maldistribution study (extension E15): real
// inlet/outlet headers drop pressure along their length, so channels do
// not share the flow evenly. The U-type (same-end) and Z-type
// (opposite-end) header arrangements are compared on three axes: flow
// spread, thermal peak and array current.
type E15Result struct {
	Rows []E15Row
}

// E15Row is one header arrangement.
type E15Row struct {
	Arrangement string // "ideal", "U-type", "Z-type"
	// MaldistributionPct of the per-channel flows.
	MaldistributionPct float64
	// PeakC with the resulting flow weights.
	PeakC float64
	// ArrayA at 1 V with per-channel flows.
	ArrayA float64
}

// e15SegFrac is the header-segment/channel hydraulic resistance ratio
// for a generously sized (~2 mm2) header on the Table II array.
const e15SegFrac = 1e-4

// E15Manifold evaluates ideal, U-type and Z-type headers.
func E15Manifold() (*E15Result, error) {
	base := flowcell.Power7Array()
	chR := hydro.ChannelPressureDrop(base.Cell.Channel, cfdFluidOf(base), 1.0)
	res := &E15Result{}
	cases := []struct {
		name string
		cfg  *hydro.ManifoldConfig
	}{
		{"ideal", nil},
		{"U-type", &hydro.ManifoldConfig{NChannels: 88, ChannelResistance: chR, SegmentResistance: e15SegFrac * chR, ZType: false}},
		{"Z-type", &hydro.ManifoldConfig{NChannels: 88, ChannelResistance: chR, SegmentResistance: e15SegFrac * chR, ZType: true}},
	}
	for _, c := range cases {
		weights := make([]float64, 88)
		maldist := 0.0
		if c.cfg == nil {
			for k := range weights {
				weights[k] = 1.0 / 88
			}
		} else {
			m, err := hydro.SolveManifold(*c.cfg)
			if err != nil {
				return nil, fmt.Errorf("E15 %s: %w", c.name, err)
			}
			weights = m.Weights
			maldist = m.MaldistributionPct
		}
		// Thermal: per-column flow weights.
		tp := thermal.Power7Problem(676, units.CtoK(27), 0)
		tp.Stack.Channels.FlowWeights = weights
		sol, err := thermal.Solve(tp)
		if err != nil {
			return nil, fmt.Errorf("E15 %s thermal: %w", c.name, err)
		}
		// Electrical: each channel at its own flow, common 1 V terminal.
		total := 0.0
		for _, w := range weights {
			one := &flowcell.Array{Cell: base.Cell, NChannels: 1}
			one.Cell.StreamFlowRate = base.TotalFlowRate() * w / 2
			op, err := one.CurrentAtVoltage(1.0)
			if err != nil {
				return nil, fmt.Errorf("E15 %s electrical: %w", c.name, err)
			}
			total += op.Current
		}
		res.Rows = append(res.Rows, E15Row{
			Arrangement:        c.name,
			MaldistributionPct: maldist,
			PeakC:              units.KtoC(sol.PeakT),
			ArrayA:             total,
		})
	}
	return res, nil
}

// cfdFluidOf extracts the array's coolant as a cfd.Fluid at its
// operating temperature (mirrors the unexported Cell.fluid helper).
func cfdFluidOf(a *flowcell.Array) (f cfd.Fluid) {
	e := a.Cell.Electrolyte
	t := a.Cell.Temperature
	f.Density = e.Density(t)
	f.Viscosity = e.Viscosity(t)
	f.ThermalConductivity = e.ThermalConductivity
	f.HeatCapacityVol = e.HeatCapacityVol
	return
}
