package experiments

import (
	"math"
	"testing"
)

func TestE6RoundTrip(t *testing.T) {
	res, err := E6RoundTrip()
	if err != nil {
		t.Fatal(err)
	}
	// 50% SOC OCV is the standard cell voltage ~1.25 V.
	if math.Abs(res.OCV-1.246) > 0.02 {
		t.Fatalf("50%% SOC OCV %g", res.OCV)
	}
	// Voltage efficiency falls from near 1 toward the limit.
	if res.Points[0].Efficiency < 0.85 {
		t.Fatalf("low-current efficiency %g", res.Points[0].Efficiency)
	}
	last := res.Points[len(res.Points)-1]
	if last.Efficiency >= res.Points[0].Efficiency {
		t.Fatal("efficiency must fall with current")
	}
	if res.EffAtHalfLimit < 0.4 || res.EffAtHalfLimit > 0.95 {
		t.Fatalf("mid-sweep efficiency %g outside expectation", res.EffAtHalfLimit)
	}
}

func TestE7Workload(t *testing.T) {
	res, err := E7Workload()
	if err != nil {
		t.Fatal(err)
	}
	if res.SwingPct <= 0.3 || res.SwingPct > 20 {
		t.Fatalf("array swing %.2f%% outside expectation", res.SwingPct)
	}
	if res.MaxPeakC > 40 {
		t.Fatalf("burst peak %.1f C exceeds steady envelope", res.MaxPeakC)
	}
	if len(res.Scenario.Samples) < 40 {
		t.Fatalf("too few samples: %d", len(res.Scenario.Samples))
	}
}

func TestE8DesignSpace(t *testing.T) {
	res, err := E8DesignSpace()
	if err != nil {
		t.Fatal(err)
	}
	if !res.TableII.Feasible {
		t.Fatal("Table II point must be feasible")
	}
	if res.GainPct < 30 {
		t.Fatalf("best design gains only %.1f%% over Table II; expected a clear win", res.GainPct)
	}
	if res.Best.PeakTempC > 85 {
		t.Fatal("best design violates the thermal constraint")
	}
	// The best design must still be manufacturable (was not rejected).
	if res.Best.Reason != "" {
		t.Fatalf("best design carries a rejection reason: %s", res.Best.Reason)
	}
}

func TestE9Variation(t *testing.T) {
	res, err := E9Variation()
	if err != nil {
		t.Fatal(err)
	}
	// 88 parallel channels average out 5% per-channel tolerance to a
	// sub-percent array-level spread.
	if rel := res.StdA / res.NominalA; rel > 0.02 {
		t.Fatalf("array-level spread %.3f%% too large", 100*rel)
	}
	if res.WorstA < 0.93*res.NominalA {
		t.Fatalf("worst case %.2f A too far below nominal %.2f A", res.WorstA, res.NominalA)
	}
}
