package experiments

import (
	"fmt"

	"bright/internal/flowcell"
	"bright/internal/thermal"
	"bright/internal/units"
)

// E10Result is the series-stack shunt-current study (extension E10):
// connecting channel groups in series raises the stack voltage toward
// the rail (easing the VRM ratio) but opens ionic leakage paths through
// the shared manifolds.
type E10Result struct {
	Rows []E10Row
}

// E10Row is one series-count design point.
type E10Row struct {
	SeriesGroups    int
	TerminalVoltage float64
	DeliveredW      float64
	ShuntLossPct    float64
	ImbalancePct    float64
}

// E10SeriesStack sweeps 1/2/4/8 series groups of the Table II array at
// 1 V per group.
func E10SeriesStack() (*E10Result, error) {
	rch, rm := flowcell.DefaultShuntResistances()
	res := &E10Result{}
	for _, m := range []int{1, 2, 4, 8} {
		s := &flowcell.SeriesStack{
			Array:                     flowcell.Power7Array(),
			SeriesGroups:              m,
			ChannelShuntResistance:    rch,
			ManifoldSegmentResistance: rm,
		}
		r, err := s.Solve(float64(m) * 1.0)
		if err != nil {
			return nil, fmt.Errorf("E10 at M=%d: %w", m, err)
		}
		res.Rows = append(res.Rows, E10Row{
			SeriesGroups:    m,
			TerminalVoltage: r.TerminalVoltage,
			DeliveredW:      r.DeliveredW,
			ShuntLossPct:    r.ShuntLossPct,
			ImbalancePct:    r.ImbalancePct,
		})
	}
	return res, nil
}

// E11Result is the channel-clogging failure injection (extension E11):
// blocked channels starve their die columns of coolant and their
// electrode area of reactant.
type E11Result struct {
	Rows []E11Row
}

// E11Row is one clogging scenario.
type E11Row struct {
	Clogged  int
	Location string // "cores" or "center"
	// PeakC with the clog; baseline (0 clogged) in the first row.
	PeakC float64
	// ArrayA: remaining array current at 1 V (survivors get the
	// redistributed flow).
	ArrayA float64
}

// E11Clogging injects contiguous clogs of 0/2/4/8 channels over the
// left core column and, for contrast, 8 channels over the cool L3
// center.
func E11Clogging() (*E11Result, error) {
	res := &E11Result{}
	scenario := func(clogged int, start int, loc string) error {
		p := thermal.Power7Problem(676, units.CtoK(27), 0)
		w := make([]float64, 88)
		for i := range w {
			w[i] = 1
		}
		for i := start; i < start+clogged && i < 88; i++ {
			w[i] = 0
		}
		p.Stack.Channels.FlowWeights = w
		sol, err := thermal.Solve(p)
		if err != nil {
			return err
		}
		// Electrical: survivors share the total flow (the pump holds
		// the flow rate); clogged channels contribute nothing.
		a := flowcell.Power7Array()
		survivors := &flowcell.Array{Cell: a.Cell, NChannels: 88 - clogged}
		survivors.Cell.StreamFlowRate = a.Cell.StreamFlowRate * 88 / float64(88-clogged)
		op, err := survivors.CurrentAtVoltage(1.0)
		if err != nil {
			return err
		}
		res.Rows = append(res.Rows, E11Row{
			Clogged:  clogged,
			Location: loc,
			PeakC:    units.KtoC(sol.PeakT),
			ArrayA:   op.Current,
		})
		return nil
	}
	for _, k := range []int{0, 2, 4, 8} {
		if err := scenario(k, 10, "cores"); err != nil {
			return nil, fmt.Errorf("E11 cores k=%d: %w", k, err)
		}
	}
	if err := scenario(8, 40, "center"); err != nil {
		return nil, fmt.Errorf("E11 center: %w", err)
	}
	return res, nil
}
