package experiments

import "testing"

func TestE1C4Baseline(t *testing.T) {
	res, err := E1C4Baseline()
	if err != nil {
		t.Fatal(err)
	}
	c := res.C4
	if c.TotalPads < 2000 || c.TotalPads > 6000 {
		t.Fatalf("pad count %d outside package expectation", c.TotalPads)
	}
	if c.CacheRailPads <= 0 || c.IOGainPct <= 0 {
		t.Fatalf("no pad relief: %+v", c)
	}
	if c.ConventionalMinV <= c.MicrofluidicMinV {
		t.Fatal("dense C4 baseline should droop less than the 14-site feed")
	}
	if res.ChipCurrentA < 40 || res.ChipCurrentA > 120 {
		t.Fatalf("chip current %.1f A outside envelope", res.ChipCurrentA)
	}
}

func TestE2DarkSilicon(t *testing.T) {
	res, err := E2DarkSilicon()
	if err != nil {
		t.Fatal(err)
	}
	if res.Comparison.CoresRelit <= 0 {
		t.Fatalf("no cores relit: %+v", res.Comparison)
	}
	if res.Comparison.Baseline.DarkFractionPct <= res.Comparison.Assisted.DarkFractionPct-100 {
		t.Fatal("dark fraction accounting broken")
	}
	if res.Comparison.Assisted.DarkFractionPct >= res.Comparison.Baseline.DarkFractionPct {
		t.Fatal("assistance must reduce the dark fraction")
	}
}

func TestE3Stack3D(t *testing.T) {
	res, err := E3Stack3D()
	if err != nil {
		t.Fatal(err)
	}
	if res.PenaltyK <= 0 {
		t.Fatalf("stacking must cost some temperature, got %+.2f K", res.PenaltyK)
	}
	if res.PenaltyK > 20 {
		t.Fatalf("stacking penalty %.1f K defeats interlayer cooling", res.PenaltyK)
	}
	if res.StackPeakC > 70 {
		t.Fatalf("stacked peak %.1f C too hot", res.StackPeakC)
	}
	// Two tiers double the power.
	if res.StackPowerW < 1.9*58 || res.StackPowerW > 2.1*60 {
		t.Fatalf("stack power %.1f W not ~2x the die", res.StackPowerW)
	}
}

func TestE4Reservoir(t *testing.T) {
	res, err := E4Reservoir()
	if err != nil {
		t.Fatal(err)
	}
	if res.UtilizationPct < 50 || res.UtilizationPct > 100 {
		t.Fatalf("utilization %.1f%% outside expectation", res.UtilizationPct)
	}
	d := res.Discharge
	if d.EnergyDensityWhPerL < 8 || d.EnergyDensityWhPerL > 40 {
		t.Fatalf("energy density %.1f Wh/L outside vanadium band", d.EnergyDensityWhPerL)
	}
	// 0.1 L at ~5.4 Ah theoretical feeding ~6 A: runtime under 2 h.
	if d.DurationS < 600 || d.DurationS > 7200 {
		t.Fatalf("discharge duration %.0f s implausible", d.DurationS)
	}
}

func TestE5ChannelSpread(t *testing.T) {
	res, err := E5ChannelSpread()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.CurrentA) != 88 {
		t.Fatalf("channel count %d", len(res.CurrentA))
	}
	if res.SpreadPct <= 0 || res.SpreadPct > 15 {
		t.Fatalf("spread %.2f%% outside expectation", res.SpreadPct)
	}
	if res.AssumptionErrPct > 0.5 {
		t.Fatalf("equal-channel assumption error %.3f%% too large", res.AssumptionErrPct)
	}
}
