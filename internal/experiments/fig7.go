package experiments

import (
	"fmt"

	"bright/internal/flowcell"
)

// Fig7Result is the array V-I characteristic of the Table II 88-channel
// array (paper Fig. 7): voltage versus total supplied current, with the
// headline operating point at 1 V.
type Fig7Result struct {
	// Curve is the V-I sweep (X: A, Y: V).
	Curve Series
	// OCV is the open-circuit voltage (paper: ~1.6-1.7 V intercept).
	OCV float64
	// CurrentAt1V is the headline number (paper: 6 A).
	CurrentAt1V float64
	// PowerAt1V in W (paper: "up to 6 W ... to feed the memory
	// modules").
	PowerAt1V float64
	// LimitingCurrent of the array (A).
	LimitingCurrent float64
	// PeakPowerW and PeakPowerVoltage locate the maximum power point.
	PeakPowerW, PeakPowerVoltage float64
}

// Fig7 regenerates the array V-I characteristic with nPoints sweep
// points.
func Fig7(nPoints int) (*Fig7Result, error) {
	if nPoints < 4 {
		return nil, fmt.Errorf("experiments: Fig7 needs >= 4 points, got %d", nPoints)
	}
	a := flowcell.Power7Array()
	curve, err := a.Polarize(nPoints, 0.985)
	if err != nil {
		return nil, err
	}
	res := &Fig7Result{
		Curve:           Series{Name: "array V-I"},
		OCV:             curve[0].OpenCircuit,
		LimitingCurrent: a.LimitingCurrent(),
	}
	for _, op := range curve {
		res.Curve.X = append(res.Curve.X, op.Current)
		res.Curve.Y = append(res.Curve.Y, op.Voltage)
	}
	at1, err := a.CurrentAtVoltage(1.0)
	if err != nil {
		return nil, fmt.Errorf("experiments: Fig7 1 V point: %w", err)
	}
	res.CurrentAt1V = at1.Current
	res.PowerAt1V = at1.Power
	best := curve.MaxPower()
	res.PeakPowerW = best.Power
	res.PeakPowerVoltage = best.Voltage
	return res, nil
}
