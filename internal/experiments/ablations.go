package experiments

import (
	"fmt"
	"math"

	"bright/internal/floorplan"
	"bright/internal/flowcell"
	"bright/internal/mesh"
	"bright/internal/pdn"
	"bright/internal/thermal"
	"bright/internal/units"
)

// SolverPathRow compares the two mass-transfer solver paths at one
// operating point of the validation cell.
type SolverPathRow struct {
	FlowULMin   float64
	FracOfLimit float64
	VCorr, VFVM float64
	// RelDiff is |VFVM-VCorr|/VCorr.
	RelDiff float64
}

// AblationSolverPath quantifies the accuracy gap between the fast
// correlation path and the FVM field path across flow rates and depths
// into the polarization curve (design choice: when is the fast path
// safe to use inside co-simulation loops?).
func AblationSolverPath() ([]SolverPathRow, error) {
	var rows []SolverPathRow
	for _, q := range []float64{10, 60, 300} {
		corr := flowcell.KjeangCell(q)
		fvm := flowcell.KjeangCell(q)
		fvm.Path = flowcell.PathFVM
		iL := corr.LimitingCurrent()
		for _, frac := range []float64{0.25, 0.5, 0.75} {
			opC, err := corr.VoltageAtCurrent(frac * iL)
			if err != nil {
				return nil, err
			}
			opF, err := fvm.VoltageAtCurrent(frac * iL)
			if err != nil {
				return nil, err
			}
			rows = append(rows, SolverPathRow{
				FlowULMin:   q,
				FracOfLimit: frac,
				VCorr:       opC.Voltage,
				VFVM:        opF.Voltage,
				RelDiff:     math.Abs(opF.Voltage-opC.Voltage) / opC.Voltage,
			})
		}
	}
	return rows, nil
}

// GridResolutionRow is one thermal-grid refinement step.
type GridResolutionRow struct {
	NX, NY int
	PeakC  float64
	// DeltaFromFinest is |peak - finest peak| in K.
	DeltaFromFinest float64
}

// AblationGridResolution sweeps the thermal grid resolution (design
// choice: the default 88x64 grid must be within a fraction of a kelvin
// of a much finer grid).
func AblationGridResolution() ([]GridResolutionRow, error) {
	type gridCase struct{ nx, ny int }
	cases := []gridCase{{22, 16}, {44, 32}, {88, 64}, {176, 128}}
	var rows []GridResolutionRow
	for _, c := range cases {
		p := thermal.Power7Problem(676, units.CtoK(27), 0)
		p.NX, p.NY = c.nx, c.ny
		p.Power = power7Raster(p)
		sol, err := thermal.Solve(p)
		if err != nil {
			return nil, fmt.Errorf("grid %dx%d: %w", c.nx, c.ny, err)
		}
		rows = append(rows, GridResolutionRow{NX: c.nx, NY: c.ny, PeakC: units.KtoC(sol.PeakT)})
	}
	finest := rows[len(rows)-1].PeakC
	for k := range rows {
		rows[k].DeltaFromFinest = math.Abs(rows[k].PeakC - finest)
	}
	return rows, nil
}

// power7Raster re-rasterizes the full-load power map onto a problem's
// (possibly non-default) grid.
func power7Raster(p *thermal.Problem) *mesh.Field2D {
	return floorplan.Power7().Rasterize(p.Grid(), floorplan.Power7FullLoad())
}

// VRMPlacementRow compares via-site placement strategies.
type VRMPlacementRow struct {
	Strategy  string
	NSites    int
	MinCacheV float64
	// WorstDropMV = (supply - MinCacheV) * 1000.
	WorstDropMV float64
}

// AblationVRMPlacement compares the distributed per-cache via placement
// against a single central site (design choice behind Fig. 5's
// distributed VRM architecture).
func AblationVRMPlacement() ([]VRMPlacementRow, error) {
	p, _, err := pdn.Power7Problem()
	if err != nil {
		return nil, err
	}
	distributed, err := pdn.Solve(p)
	if err != nil {
		return nil, err
	}
	single := *p
	single.Sites = pdn.SingleViaSite(p.Floorplan, pdn.Power7TSVResistance)
	solSingle, err := pdn.Solve(&single)
	if err != nil {
		return nil, err
	}
	return []VRMPlacementRow{
		{
			Strategy: "per-cache sites", NSites: len(p.Sites),
			MinCacheV:   distributed.MinVCache,
			WorstDropMV: 1000 * (p.Supply - distributed.MinVCache),
		},
		{
			Strategy: "single central site", NSites: 1,
			MinCacheV:   solSingle.MinVCache,
			WorstDropMV: 1000 * (p.Supply - solSingle.MinVCache),
		},
	}, nil
}

// ChannelCountRow is one array-sizing design point.
type ChannelCountRow struct {
	NChannels   int
	CurrentAt1V float64
	PumpPowerW  float64
	// NetW = electrical power at 1 V - pumping power.
	NetW float64
}

// AblationChannelCount sweeps the number of channels at fixed total
// flow (design choice: the 88-channel Table II array versus sparser or
// denser arrays).
func AblationChannelCount() ([]ChannelCountRow, error) {
	var rows []ChannelCountRow
	for _, n := range []int{44, 88, 176} {
		a := flowcell.Power7Array()
		a.NChannels = n
		// Keep the total flow fixed: per-stream flow scales inversely.
		a.Cell.StreamFlowRate = a.Cell.StreamFlowRate * 88 / float64(n)
		op, err := a.CurrentAtVoltage(1.0)
		if err != nil {
			return nil, fmt.Errorf("channels %d: %w", n, err)
		}
		net := a.HydraulicNetwork(1.5, 0.5)
		hyd, err := net.Evaluate(a.TotalFlowRate())
		if err != nil {
			return nil, err
		}
		rows = append(rows, ChannelCountRow{
			NChannels:   n,
			CurrentAt1V: op.Current,
			PumpPowerW:  hyd.PumpPower,
			NetW:        op.Power - hyd.PumpPower,
		})
	}
	return rows, nil
}
