package experiments

import (
	"fmt"

	"bright/internal/flowcell"
	"bright/internal/num"
	"bright/internal/units"
)

// Fig3Curve is one flow rate of the Fig. 3 validation: the paper plots
// cell voltage against current density (mA/cm2) for the Kjeang 2007
// cell at 2.5, 10, 60 and 300 uL/min, comparing COMSOL against
// experiment. Here the correlation- and FVM-path models play the role
// of the two independent models, and Reference is a reconstruction of
// the experimental curve (see ReferenceNote).
type Fig3Curve struct {
	FlowULMin float64
	// Model is the correlation-path polarization (X: mA/cm2, Y: V).
	Model Series
	// ModelFVM is the finite-volume-path polarization on the same
	// current grid.
	ModelFVM Series
	// Reference is the reconstructed experimental curve on the same
	// current grid.
	Reference Series
	// MaxErrModel and MaxErrFVM are the maximum relative voltage
	// deviations of the two models from the reference (the paper
	// quotes "within 10%" for its COMSOL model).
	MaxErrModel, MaxErrFVM float64
	// MaxErrPaths is the mutual deviation of the two model paths.
	MaxErrPaths float64
	// LimitingCurrentMACM2 is the model's limiting current density.
	LimitingCurrentMACM2 float64
}

// ReferenceNote documents the provenance of the Fig. 3 reference data.
const ReferenceNote = "The experimental polarization data of Kjeang et al. 2007 is not " +
	"available offline; the Reference series is a reconstruction with the documented " +
	"features of the published figure (open-circuit voltage depressed ~30 mV below the " +
	"Nernst value, a stiffer ohmic slope from the graphite-rod cell, and flow-dependent " +
	"limiting current densities of roughly 12/19/35/60 mA/cm2 growing as Q^(1/3)). The " +
	"validation therefore checks (a) both solver paths against this descriptive reference " +
	"within the paper's 10% band and (b) the two independent solver paths against each other."

// referenceCell perturbs the Table I cell into the descriptive
// "experimental" reference: slightly depressed OCV (mixed-potential
// losses at the real electrodes), a 40% stiffer contact resistance and
// ~8% less effective flow (inlet maldistribution).
func referenceCell(flowULMin float64) *flowcell.Cell {
	c := flowcell.KjeangCell(0.95 * flowULMin)
	c.Anode.Couple.E0 += 0.012
	c.Cathode.Couple.E0 -= 0.012
	c.ContactASR *= 1.3
	return c
}

// Fig3 regenerates the validation figure. nPoints controls the sweep
// resolution (the paper's figure has ~10 markers; use >= 12).
func Fig3(nPoints int) ([]Fig3Curve, error) {
	if nPoints < 4 {
		return nil, fmt.Errorf("experiments: Fig3 needs >= 4 points, got %d", nPoints)
	}
	var out []Fig3Curve
	for _, q := range flowcell.KjeangFlowRatesULMin {
		model := flowcell.KjeangCell(q)
		fvm := flowcell.KjeangCell(q)
		fvm.Path = flowcell.PathFVM
		ref := referenceCell(q)

		// Shared current grid: up to 80% of the most conservative
		// limiting current so every model is defined everywhere (the
		// published experimental sweeps also stop short of the
		// mass-transport collapse).
		iMax := model.LimitingCurrent()
		if l := ref.LimitingCurrent(); l < iMax {
			iMax = l
		}
		currents := num.Linspace(0, 0.80*iMax, nPoints)
		area := model.GeometricElectrodeArea()

		curve := Fig3Curve{
			FlowULMin:            q,
			Model:                Series{Name: fmt.Sprintf("model-corr %g uL/min", q)},
			ModelFVM:             Series{Name: fmt.Sprintf("model-fvm %g uL/min", q)},
			Reference:            Series{Name: fmt.Sprintf("reference %g uL/min", q)},
			LimitingCurrentMACM2: units.APerM2ToMAPerCM2(model.LimitingCurrent() / area),
		}
		for _, i := range currents {
			x := units.APerM2ToMAPerCM2(i / area)
			opM, err := model.VoltageAtCurrent(i)
			if err != nil {
				return nil, fmt.Errorf("fig3 corr %g uL/min at %g A: %w", q, i, err)
			}
			opF, err := fvm.VoltageAtCurrent(i)
			if err != nil {
				return nil, fmt.Errorf("fig3 fvm %g uL/min at %g A: %w", q, i, err)
			}
			opR, err := ref.VoltageAtCurrent(i)
			if err != nil {
				return nil, fmt.Errorf("fig3 ref %g uL/min at %g A: %w", q, i, err)
			}
			curve.Model.X = append(curve.Model.X, x)
			curve.Model.Y = append(curve.Model.Y, opM.Voltage)
			curve.ModelFVM.X = append(curve.ModelFVM.X, x)
			curve.ModelFVM.Y = append(curve.ModelFVM.Y, opF.Voltage)
			curve.Reference.X = append(curve.Reference.X, x)
			curve.Reference.Y = append(curve.Reference.Y, opR.Voltage)
		}
		curve.MaxErrModel = maxRelDiff(curve.Model.Y, curve.Reference.Y)
		curve.MaxErrFVM = maxRelDiff(curve.ModelFVM.Y, curve.Reference.Y)
		curve.MaxErrPaths = maxRelDiff(curve.ModelFVM.Y, curve.Model.Y)
		out = append(out, curve)
	}
	return out, nil
}
