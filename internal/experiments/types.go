// Package experiments regenerates every table and figure of the paper's
// evaluation: Fig. 3 (validation polarization curves), Fig. 7 (array V-I
// characteristic), Fig. 8 (power-grid voltage map), Fig. 9 (thermal
// map), the scalar claims of Section III (cache power, pumping power,
// temperature-coupling gains), and the ablation studies listed in
// DESIGN.md. Each experiment returns plain data consumed by both
// cmd/repro (CSV/ASCII output) and the root bench harness.
package experiments

import "fmt"

// Series is one named X-Y data series.
type Series struct {
	Name string
	X, Y []float64
}

// Check validates internal consistency.
func (s Series) Check() error {
	if len(s.X) != len(s.Y) {
		return fmt.Errorf("experiments: series %q has %d x vs %d y", s.Name, len(s.X), len(s.Y))
	}
	if len(s.X) == 0 {
		return fmt.Errorf("experiments: series %q empty", s.Name)
	}
	return nil
}

// maxRelDiff returns the maximum relative difference between two equal-
// length value slices (relative to the reference slice b).
func maxRelDiff(a, b []float64) float64 {
	m := 0.0
	for k := range a {
		if b[k] == 0 {
			continue
		}
		d := (a[k] - b[k]) / b[k]
		if d < 0 {
			d = -d
		}
		if d > m {
			m = d
		}
	}
	return m
}
