package experiments

import (
	"math"
	"strings"
	"testing"

	"bright/internal/core"
	"bright/internal/flowcell"
	"bright/internal/vis"
)

// TestFullPipelineDeterministic: two end-to-end evaluations of the
// integrated system produce bit-identical headline numbers — there is
// no hidden global state or nondeterminism anywhere in the stack.
func TestFullPipelineDeterministic(t *testing.T) {
	run := func() *core.Report {
		sys, err := core.NewSystem(core.DefaultConfig())
		if err != nil {
			t.Fatal(err)
		}
		rep, err := sys.Evaluate()
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	if a.CoSim.Operating.Current != b.CoSim.Operating.Current {
		t.Fatalf("current differs: %v vs %v", a.CoSim.Operating.Current, b.CoSim.Operating.Current)
	}
	if a.Grid.MinVCache != b.Grid.MinVCache {
		t.Fatal("grid solution differs")
	}
	if a.Thermal.PeakT != b.Thermal.PeakT {
		t.Fatal("thermal solution differs")
	}
}

// TestExtremeOperatingPoints: the stack stays solvable at the corners
// of the physically sensible envelope.
func TestExtremeOperatingPoints(t *testing.T) {
	// Hot inlet near the practical ceiling.
	hot := core.DefaultConfig()
	hot.InletTempC = 55
	sys, err := core.NewSystem(hot)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Evaluate()
	if err != nil {
		t.Fatalf("55 C inlet: %v", err)
	}
	if rep.PeakTempC < 55 || rep.PeakTempC > 80 {
		t.Fatalf("55 C inlet peak %.1f C", rep.PeakTempC)
	}
	// Deeply starved flow.
	lean := core.DefaultConfig()
	lean.FlowMLMin = 10
	sys, err = core.NewSystem(lean)
	if err != nil {
		t.Fatal(err)
	}
	rep, err = sys.Evaluate()
	if err != nil {
		t.Fatalf("10 ml/min: %v", err)
	}
	if rep.PeakTempC < 50 {
		t.Fatalf("starved flow peak %.1f C suspiciously cool", rep.PeakTempC)
	}
	// Light load at a half-voltage rail.
	odd := core.DefaultConfig()
	odd.SupplyVoltage = 0.8
	odd.ChipLoad = 0.3
	sys, err = core.NewSystem(odd)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := sys.Evaluate(); err != nil {
		t.Fatalf("0.8 V / 30%% load: %v", err)
	}
}

// TestFig7CSVRoundTrip: a real experiment series survives the CSV
// write/read cycle exactly (the repro harness's on-disk format is
// lossless for its own data).
func TestFig7CSVRoundTrip(t *testing.T) {
	res, err := Fig7(12)
	if err != nil {
		t.Fatal(err)
	}
	var b strings.Builder
	if err := vis.WriteCSVSeries(&b, []string{"I_A", "V"}, res.Curve.X, res.Curve.Y); err != nil {
		t.Fatal(err)
	}
	headers, cols, err := vis.ReadCSVSeries(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if headers[0] != "I_A" || headers[1] != "V" {
		t.Fatalf("headers %v", headers)
	}
	for k := range res.Curve.X {
		if math.Abs(cols[0][k]-res.Curve.X[k]) > 1e-6*(1+math.Abs(res.Curve.X[k])) {
			t.Fatalf("X row %d: %g vs %g", k, cols[0][k], res.Curve.X[k])
		}
		if math.Abs(cols[1][k]-res.Curve.Y[k]) > 1e-6 {
			t.Fatalf("Y row %d: %g vs %g", k, cols[1][k], res.Curve.Y[k])
		}
	}
}

// TestCrossModelEnergyAccounting: electrical + heat + pumping close the
// books at the system level.
func TestCrossModelEnergyAccounting(t *testing.T) {
	a := flowcell.Power7Array()
	op, err := a.CurrentAtVoltage(1.0)
	if err != nil {
		t.Fatal(err)
	}
	heat, err := a.HeatDissipation(op)
	if err != nil {
		t.Fatal(err)
	}
	ocv, err := a.Cell.OpenCircuitVoltage()
	if err != nil {
		t.Fatal(err)
	}
	// Chemical power in == electrical out + heat.
	chem := ocv * op.Current
	if math.Abs(chem-(op.Power+heat)) > 1e-9*chem {
		t.Fatalf("energy books do not close: %g vs %g", chem, op.Power+heat)
	}
}
