package experiments

import (
	"bright/internal/core"
	"bright/internal/cosim"
	"bright/internal/floorplan"
	"bright/internal/flowcell"
	"bright/internal/pdn"
	"bright/internal/thermal"
	"bright/internal/units"
)

// E1Result is the conventional-C4-baseline comparison (extension E1):
// the paper's Section-I argument — microfluidic power delivery frees
// package pads for I/O — made quantitative.
type E1Result struct {
	C4 *pdn.C4BaselineResult
	// ChipCurrentA is the full-load chip current at 1 V used for the
	// full-chip pad accounting.
	ChipCurrentA float64
}

// E1C4Baseline evaluates the conventional baseline at the POWER7+
// full-load current.
func E1C4Baseline() (*E1Result, error) {
	f := floorplan.Power7()
	chipW := f.TotalPower(floorplan.Power7FullLoad())
	res, err := pdn.C4Baseline(pdn.DefaultC4(), chipW/1.0)
	if err != nil {
		return nil, err
	}
	return &E1Result{C4: res, ChipCurrentA: chipW}, nil
}

// E2Result is the dark-silicon relief study (extension E2).
type E2Result struct {
	Comparison *core.DarkSiliconComparison
	// BudgetW is the conventional delivery capacity assumed.
	BudgetW float64
	// ArrayW is the microfluidic power credited to the cache rail.
	ArrayW float64
}

// E2DarkSilicon evaluates the lit-core relief with the Fig. 7 array
// power (after VRM conversion) against a constrained delivery budget.
func E2DarkSilicon() (*E2Result, error) {
	s1, err := S1CachePower()
	if err != nil {
		return nil, err
	}
	const budget = 40.0 // W: a delivery wall below the 58.8 W full load
	cmp, err := core.CompareDarkSilicon(budget, s1.DeliveredW)
	if err != nil {
		return nil, err
	}
	return &E2Result{Comparison: cmp, BudgetW: budget, ArrayW: s1.DeliveredW}, nil
}

// E3Result compares the two-tier 3D stack against the single die
// (extension E3, the paper's stacking outlook).
type E3Result struct {
	SinglePeakC, StackPeakC float64
	// StackPowerW is the two-tier total power.
	StackPowerW float64
	// PenaltyK is the peak-temperature penalty of stacking.
	PenaltyK float64
}

// E3Stack3D runs both thermal configurations at Table II flow per
// cavity.
func E3Stack3D() (*E3Result, error) {
	single, err := Fig9(676, 27)
	if err != nil {
		return nil, err
	}
	f := floorplan.Power7()
	spec := thermal.Power7ChannelSpec(units.MLPerMinToM3PerS(676), units.CtoK(27), thermal.VanadiumCoolant())
	p := &thermal.Problem{
		DieWidth:  f.Width,
		DieHeight: f.Height,
		Stack:     thermal.Power7Stack3D(spec),
	}
	p.Power = f.Rasterize(p.Grid(), floorplan.Power7FullLoad())
	sol, err := thermal.Solve(p)
	if err != nil {
		return nil, err
	}
	return &E3Result{
		SinglePeakC: single.PeakC,
		StackPeakC:  units.KtoC(sol.PeakT),
		StackPowerW: sol.TotalPower,
		PenaltyK:    units.KtoC(sol.PeakT) - single.PeakC,
	}, nil
}

// E4Result is the reservoir-discharge study (extension E4).
type E4Result struct {
	Discharge *flowcell.DischargeResult
	// ReservoirL is the per-side electrolyte volume in liters.
	ReservoirL float64
	// TheoreticalAh bounds the deliverable charge.
	TheoreticalAh float64
	// UtilizationPct = delivered / theoretical.
	UtilizationPct float64
}

// E4Reservoir discharges a 0.1 L-per-side reservoir through the
// Table II array at the 1 V rail down to 10% state of charge.
func E4Reservoir() (*E4Result, error) {
	a := flowcell.Power7Array()
	const volume = 1e-4 // 0.1 L per side
	r, err := flowcell.NewReservoir(a, volume)
	if err != nil {
		return nil, err
	}
	theoretical := r.TheoreticalCapacityAh(a.Cell.Anode.Couple.N)
	d, err := r.DischargeConstantVoltage(a, 1.0, 10, 0.1, 1_000_000)
	if err != nil {
		return nil, err
	}
	return &E4Result{
		Discharge:      d,
		ReservoirL:     volume * 1000,
		TheoreticalAh:  theoretical,
		UtilizationPct: 100 * d.CapacityAh / theoretical,
	}, nil
}

// E5ChannelSpread exposes the per-channel nonuniformity analysis at the
// nominal condition (extension E5).
func E5ChannelSpread() (*cosim.ChannelSpread, error) {
	return cosim.PerChannelSpread(cosim.Config{
		TotalFlowMLMin: 676, InletTempC: 27, TerminalVoltage: 1.0,
	})
}
