package experiments

import (
	"bright/internal/pdn"
	"bright/internal/thermal"
	"bright/internal/units"
)

// Fig8Result is the on-chip voltage map of the cache-supplying power
// grid (paper Fig. 8: values spanning roughly 0.96-0.995 V at a 1 V
// supply).
type Fig8Result struct {
	Solution *pdn.Solution
	// Supply is the VRM output voltage.
	Supply float64
	// MinCacheV and MaxV summarize the map.
	MinCacheV, MaxV float64
	// TotalLoadA is the cache current drawn (A).
	TotalLoadA float64
}

// Fig8 regenerates the power-grid voltage map.
func Fig8() (*Fig8Result, error) {
	p, _, err := pdn.Power7Problem()
	if err != nil {
		return nil, err
	}
	sol, err := pdn.Solve(p)
	if err != nil {
		return nil, err
	}
	return &Fig8Result{
		Solution:   sol,
		Supply:     p.Supply,
		MinCacheV:  sol.MinVCache,
		MaxV:       sol.MaxV,
		TotalLoadA: sol.TotalLoad,
	}, nil
}

// Fig9Result is the full-load thermal map under the Table II array
// (paper Fig. 9: 41 C peak at 27 C inlet and 676 ml/min).
type Fig9Result struct {
	Solution *thermal.Solution
	// PeakC is the peak die temperature in C.
	PeakC float64
	// OutletC is the coolant outlet temperature in C.
	OutletC float64
	// TotalPowerW is the integrated chip power.
	TotalPowerW float64
}

// Fig9 regenerates the thermal map at the given flow (ml/min) and inlet
// temperature (C); pass the Table II nominal 676 and 27.
func Fig9(flowMLMin, inletC float64) (*Fig9Result, error) {
	sol, err := thermal.Solve(thermal.Power7Problem(flowMLMin, units.CtoK(inletC), 0))
	if err != nil {
		return nil, err
	}
	return &Fig9Result{
		Solution:    sol,
		PeakC:       units.KtoC(sol.PeakT),
		OutletC:     units.KtoC(sol.OutletT),
		TotalPowerW: sol.TotalPower,
	}, nil
}
