package experiments

import (
	"strings"
	"testing"
)

func TestTableIFixtureMatchesPaper(t *testing.T) {
	tab := TableI()
	if !tab.AllMatch() {
		t.Fatalf("Table I fixture deviates from the paper:\n%s", tab.Format())
	}
	if len(tab.Rows) < 12 {
		t.Fatalf("Table I too short: %d rows", len(tab.Rows))
	}
}

func TestTableIIFixtureMatchesPaper(t *testing.T) {
	tab := TableII()
	if !tab.AllMatch() {
		t.Fatalf("Table II fixture deviates from the paper:\n%s", tab.Format())
	}
	if len(tab.Rows) < 18 {
		t.Fatalf("Table II too short: %d rows", len(tab.Rows))
	}
}

func TestTableFormat(t *testing.T) {
	out := TableI().Format()
	if !strings.Contains(out, "Table I") || !strings.Contains(out, "paper:") {
		t.Fatalf("format output:\n%s", out)
	}
	// A deliberately broken row formats with a NOTE marker.
	tab := Table{Name: "x", Rows: []TableRow{{Parameter: "p", Paper: "1", Fixture: "2", Match: false}}}
	if !strings.Contains(tab.Format(), "NOTE") {
		t.Fatal("mismatch marker missing")
	}
	if tab.AllMatch() {
		t.Fatal("AllMatch on mismatching table")
	}
}
