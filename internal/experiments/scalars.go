package experiments

import (
	"bright/internal/cosim"
	"bright/internal/floorplan"
	"bright/internal/flowcell"
	"bright/internal/hydro"
	"bright/internal/pdn"
	"bright/internal/units"
)

// S1Result quantifies the Section III-A headline: the array powers the
// L2+L3 cache rails of the POWER7+ through the on-package VRMs.
type S1Result struct {
	// ArrayCurrentA and ArrayPowerW at the 1 V rail (paper: 6 A / 6 W).
	ArrayCurrentA, ArrayPowerW float64
	// DeliveredW after VRM conversion (86% switched-capacitor).
	DeliveredW float64
	// CacheAreaCM2 and CacheDemandW/CacheDemandA from the floorplan at
	// the paper's 1 W/cm2 (the paper's own arithmetic implies ~5 cm2 of
	// cache and quotes 5 A; our explicit floorplan yields ~2.2 cm2).
	CacheAreaCM2, CacheDemandW, CacheDemandA float64
	// Powered reports DeliveredW >= CacheDemandW.
	Powered bool
}

// S1CachePower evaluates the cache-powering claim.
func S1CachePower() (*S1Result, error) {
	a := flowcell.Power7Array()
	op, err := a.CurrentAtVoltage(1.0)
	if err != nil {
		return nil, err
	}
	vrm := pdn.DefaultVRM()
	f := floorplan.Power7()
	demandW := units.WPerCM2ToWPerM2(1.0) * f.CacheArea()
	return &S1Result{
		ArrayCurrentA: op.Current,
		ArrayPowerW:   op.Power,
		DeliveredW:    op.Power * vrm.Efficiency,
		CacheAreaCM2:  f.CacheArea() / units.SquareCentimeter,
		CacheDemandW:  demandW,
		CacheDemandA:  demandW / 1.0,
		Powered:       op.Power*vrm.Efficiency >= demandW,
	}, nil
}

// S2Result compares our self-consistent hydraulics against the paper's
// quoted values (Section III-B: 1.5 bar/cm, 4.4 W pumping at 50% pump
// efficiency, ~1.4 m/s mean velocity). The paper's pressure gradient is
// not reproducible from its own Table II geometry with laminar duct
// friction; both numbers are reported.
type S2Result struct {
	Report hydro.Report
	// MeanVelocityMS (paper: 1.4 m/s).
	MeanVelocityMS float64
	// GradientBarPerCM (paper: 1.5 bar/cm).
	GradientBarPerCM float64
	// PumpPowerW (paper: 4.4 W).
	PumpPowerW float64
	// PaperGradientBarPerCM, PaperPumpPowerW are the quoted values.
	PaperGradientBarPerCM, PaperPumpPowerW float64
	// GenerationExceedsPumping is the paper's net-energy claim using
	// our numbers.
	GenerationExceedsPumping bool
}

// S2Hydraulics evaluates the pressure/pumping claims at the Table II
// operating point.
func S2Hydraulics() (*S2Result, error) {
	a := flowcell.Power7Array()
	net := a.HydraulicNetwork(1.5, hydro.PumpEfficiencyDefault)
	rep, err := net.Evaluate(a.TotalFlowRate())
	if err != nil {
		return nil, err
	}
	op, err := a.CurrentAtVoltage(1.0)
	if err != nil {
		return nil, err
	}
	return &S2Result{
		Report:                   rep,
		MeanVelocityMS:           rep.MeanVelocity,
		GradientBarPerCM:         units.PaToBar(rep.PressureGradient) / 100,
		PumpPowerW:               rep.PumpPower,
		PaperGradientBarPerCM:    1.5,
		PaperPumpPowerW:          4.4,
		GenerationExceedsPumping: op.Power > rep.PumpPower,
	}, nil
}

// S3Result is the nominal-flow temperature-coupling gain (paper: "a
// maximum 4% increase of the generated current at a fixed potential").
type S3Result struct {
	Gain *cosim.Gain
	// CurrentGainPct at the 1 V rail.
	CurrentGainPct float64
	// CellTempC is the converged electrolyte film temperature.
	CellTempC float64
}

// S3TempSensitivityNominal evaluates the nominal coupling gain.
func S3TempSensitivityNominal() (*S3Result, error) {
	g, err := cosim.CouplingGain(cosim.Config{
		TotalFlowMLMin: 676, InletTempC: 27, TerminalVoltage: 1.0,
	})
	if err != nil {
		return nil, err
	}
	return &S3Result{
		Gain:           g,
		CurrentGainPct: 100 * g.CurrentGain,
		CellTempC:      units.KtoC(g.Coupled.CellTempK),
	}, nil
}

// S4Result is the hot-operation study (paper: power increases by up to
// 23% at 48 ml/min flow or with a 37 C inlet).
type S4Result struct {
	// LowFlowGainPct: 48 ml/min coupled vs its isothermal reference.
	LowFlowGainPct float64
	// LowFlowCellTempC is the converged electrolyte temperature there.
	LowFlowCellTempC float64
	// HotInletGainPct: 37 C inlet coupled power vs the nominal 27 C
	// coupled power at the same flow and rail voltage.
	HotInletGainPct float64
	// PaperGainPct is the quoted value (23).
	PaperGainPct float64
}

// S4HotOperation evaluates both hot-operation readings.
func S4HotOperation() (*S4Result, error) {
	low, err := cosim.CouplingGain(cosim.Config{
		TotalFlowMLMin: 48, InletTempC: 27, TerminalVoltage: 1.0,
	})
	if err != nil {
		return nil, err
	}
	hot, err := cosim.Run(cosim.Config{
		TotalFlowMLMin: 676, InletTempC: 37, TerminalVoltage: 1.0,
	})
	if err != nil {
		return nil, err
	}
	nom, err := cosim.Run(cosim.Config{
		TotalFlowMLMin: 676, InletTempC: 27, TerminalVoltage: 1.0,
	})
	if err != nil {
		return nil, err
	}
	return &S4Result{
		LowFlowGainPct:   100 * low.PowerGain,
		LowFlowCellTempC: units.KtoC(low.Coupled.CellTempK),
		HotInletGainPct:  100 * (hot.Operating.Power/nom.Operating.Power - 1),
		PaperGainPct:     23,
	}, nil
}
