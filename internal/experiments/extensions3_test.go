package experiments

import "testing"

func TestE10SeriesStack(t *testing.T) {
	res, err := E10SeriesStack()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	prev := -1.0
	for _, r := range res.Rows {
		if r.ShuntLossPct <= prev {
			t.Fatalf("shunt loss must grow with series count (M=%d: %.2f%%)", r.SeriesGroups, r.ShuntLossPct)
		}
		prev = r.ShuntLossPct
		if r.DeliveredW < 5 || r.DeliveredW > 7 {
			t.Fatalf("M=%d delivered %.2f W", r.SeriesGroups, r.DeliveredW)
		}
	}
	if last := res.Rows[3]; last.ShuntLossPct < 1 || last.ShuntLossPct > 10 {
		t.Fatalf("8-series shunt %.2f%% outside expectation", last.ShuntLossPct)
	}
}

func TestE11Clogging(t *testing.T) {
	res, err := E11Clogging()
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 5 {
		t.Fatalf("rows %d", len(res.Rows))
	}
	base := res.Rows[0]
	if base.Clogged != 0 {
		t.Fatal("first row must be the baseline")
	}
	// Clogging over cores heats the die monotonically.
	prevPeak := base.PeakC
	for _, r := range res.Rows[1:4] {
		if r.PeakC <= prevPeak {
			t.Fatalf("peak must rise with core-column clogs (%d: %.2f C)", r.Clogged, r.PeakC)
		}
		prevPeak = r.PeakC
		// Electrical output degrades only mildly: survivors run faster.
		if r.ArrayA < 0.85*base.ArrayA {
			t.Fatalf("%d clogs cut current to %.2f A", r.Clogged, r.ArrayA)
		}
	}
	// 8 clogs over cores stay survivable (< 50 C).
	if res.Rows[3].PeakC > 50 {
		t.Fatalf("8-clog peak %.1f C", res.Rows[3].PeakC)
	}
	// Location matters: the same 8 clogs over the cool center cost
	// far less peak temperature than over the cores.
	center := res.Rows[4]
	if center.Location != "center" {
		t.Fatal("last row must be the center scenario")
	}
	coreRise := res.Rows[3].PeakC - base.PeakC
	centerRise := center.PeakC - base.PeakC
	if centerRise > 0.5*coreRise {
		t.Fatalf("center clog rise %.2f K should be well below core clog rise %.2f K",
			centerRise, coreRise)
	}
}
