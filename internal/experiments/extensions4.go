package experiments

import (
	"fmt"

	"bright/internal/cfd"
	"bright/internal/floorplan"
	"bright/internal/flowcell"
	"bright/internal/units"
)

// E12Result is the bright-silicon feasibility frontier (extension E12):
// the paper's two-pronged conclusion made quantitative — (1) how much
// must processor power density fall, and (2) how much must
// electrochemical power density rise, before the flow cells can power
// the *entire* chip, not just the caches.
type E12Result struct {
	// ChipFullLoadW is the unscaled full-load demand.
	ChipFullLoadW float64
	// ArrayMaxW is the Table II array's maximum power point.
	ArrayMaxW float64
	// BestGeometryMaxW is the design-space best array's maximum power.
	BestGeometryMaxW float64
	// DensityFractionTableII is the chip power-density scale factor at
	// which the Table II array covers the whole chip (prong 1 alone).
	DensityFractionTableII float64
	// DensityFractionBest uses the best explored geometry instead.
	DensityFractionBest float64
	// ElectrochemGainNeeded is the factor by which the flow-cell power
	// density must rise to cover the *unscaled* chip with the Table II
	// array (prong 2 alone).
	ElectrochemGainNeeded float64
}

// E12BrightSiliconFrontier computes the frontier.
func E12BrightSiliconFrontier() (*E12Result, error) {
	f := floorplan.Power7()
	chipW := f.TotalPower(floorplan.Power7FullLoad())

	maxPowerOf := func(a *flowcell.Array) (float64, error) {
		curve, err := a.Polarize(30, 0.98)
		if err != nil {
			return 0, err
		}
		return curve.MaxPower().Power, nil
	}
	arrayMax, err := maxPowerOf(flowcell.Power7Array())
	if err != nil {
		return nil, err
	}

	// Best geometry from the design exploration.
	e8, err := E8DesignSpace()
	if err != nil {
		return nil, err
	}
	best := e8.Best.Candidate
	bestArray := flowcell.Power7ArrayCustom(
		cfd.Channel{Width: best.Width, Height: best.Height, Length: 22e-3},
		e8.Best.NChannels, units.MLPerMinToM3PerS(676), 300)
	bestMax, err := maxPowerOf(bestArray)
	if err != nil {
		return nil, err
	}

	res := &E12Result{
		ChipFullLoadW:          chipW,
		ArrayMaxW:              arrayMax,
		BestGeometryMaxW:       bestMax,
		DensityFractionTableII: arrayMax / chipW,
		DensityFractionBest:    bestMax / chipW,
		ElectrochemGainNeeded:  chipW / arrayMax,
	}
	if res.DensityFractionTableII <= 0 || res.DensityFractionTableII >= 1 {
		return nil, fmt.Errorf("experiments: frontier fraction %g out of range", res.DensityFractionTableII)
	}
	return res, nil
}

// E13Result sweeps the architecture "compromise" axis (extension E13):
// 64-core tilings with shrinking core shares (bigger caches) reduce the
// chip's power density — the paper's prong (1) — and close the gap to
// full microfluidic powering.
type E13Result struct {
	Rows []E13Row
}

// E13Row is one core-fraction design point on the 8x8 tiling.
type E13Row struct {
	// CoreFraction of each tile devoted to the core.
	CoreFraction float64
	// CacheFraction of the die.
	CacheFraction float64
	// ChipW at full load with the standard densities.
	ChipW float64
	// CacheDemandW at 1 W/cm2.
	CacheDemandW float64
	// ArrayCoversCaches at the Fig. 7 operating point (after VRM).
	ArrayCoversCaches bool
	// FrontierFraction = array max power / chip power: how close this
	// architecture is to fully bright silicon (1.0 = fully powered).
	FrontierFraction float64
}

// E13ManyCoreSweep evaluates core fractions 0.7/0.5/0.3/0.15 on a
// 64-core tiling.
func E13ManyCoreSweep() (*E13Result, error) {
	s1, err := S1CachePower()
	if err != nil {
		return nil, err
	}
	curve, err := flowcell.Power7Array().Polarize(30, 0.98)
	if err != nil {
		return nil, err
	}
	arrayMax := curve.MaxPower().Power
	pm := floorplan.Power7FullLoad()
	res := &E13Result{}
	for _, frac := range []float64{0.7, 0.5, 0.3, 0.15} {
		f, err := floorplan.ManyCoreWithCoreFraction(8, 8, frac)
		if err != nil {
			return nil, err
		}
		cacheW := units.WPerCM2ToWPerM2(1.0) * f.CacheArea()
		chipW := f.TotalPower(pm)
		res.Rows = append(res.Rows, E13Row{
			CoreFraction:      frac,
			CacheFraction:     f.CacheArea() / f.Area(),
			ChipW:             chipW,
			CacheDemandW:      cacheW,
			ArrayCoversCaches: s1.DeliveredW >= cacheW,
			FrontierFraction:  arrayMax / chipW,
		})
	}
	return res, nil
}
