package experiments

import (
	"bright/internal/cosim"
	"bright/internal/design"
	"bright/internal/floorplan"
	"bright/internal/mesh"
	"bright/internal/pdn"
	"bright/internal/thermal"
	"bright/internal/units"
)

// E16Result compares the conventional air-cooled baseline against the
// microfluidic array (extension E16): the paper's motivation — issue
// (3), "energy required for cooling down ICs" — quantified as the
// thermal headroom the embedded coolant buys.
type E16Result struct {
	// AirPeakC at a good server cooler (2500 W/m2K effective) with a
	// 35 C air inlet.
	AirPeakC float64
	// MicroPeakC at the Table II array with a 27 C liquid inlet.
	MicroPeakC float64
	// AdvantageK = AirPeakC - MicroPeakC.
	AdvantageK float64
	// AirHeadroomW and MicroHeadroomW: the chip power each solution
	// could carry before hitting an 85 C junction (linear scaling from
	// the solved rise).
	AirHeadroomW, MicroHeadroomW float64
}

// E16AirCooledBaseline evaluates both cooling solutions on the
// full-load POWER7+ map.
func E16AirCooledBaseline() (*E16Result, error) {
	f := floorplan.Power7()
	air := thermal.Power7AirCooled(2500, units.CtoK(35), nil)
	air.Power = f.Rasterize(air.Grid(), floorplan.Power7FullLoad())
	airSol, err := thermal.SolveAirCooled(air)
	if err != nil {
		return nil, err
	}
	micro, err := thermal.Solve(thermal.Power7Problem(676, units.CtoK(27), 0))
	if err != nil {
		return nil, err
	}
	res := &E16Result{
		AirPeakC:   units.KtoC(airSol.PeakT),
		MicroPeakC: units.KtoC(micro.PeakT),
		AdvantageK: airSol.PeakT - micro.PeakT,
	}
	// Linear headroom: power scales the rise above the coolant inlet.
	const tj = 85.0
	res.AirHeadroomW = airSol.TotalPower * (tj - units.KtoC(air.AmbientK)) / (res.AirPeakC - units.KtoC(air.AmbientK))
	res.MicroHeadroomW = micro.TotalPower * (tj - 27) / (res.MicroPeakC - 27)
	return res, nil
}

// E17Result is the wake-up droop study (extension E17): when the caches
// step from idle to full current, the decap must bridge the VRM
// response lag; the droop depth sizes the on-die decoupling budget.
type E17Result struct {
	Rows []E17Row
}

// E17Row is one decap budget.
type E17Row struct {
	// DecapNFPerMM2 is the decap density in nF/mm2.
	DecapNFPerMM2 float64
	// DroopMV below the DC operating point.
	DroopMV float64
	// WorstV absolute minimum (V).
	WorstV float64
}

// E17WakeupDroop sweeps decap budgets at a 1 us VRM response lag.
func E17WakeupDroop() (*E17Result, error) {
	res := &E17Result{}
	for _, decap := range []float64{5e-3, 2e-2, 5e-2} {
		base, _, err := pdn.Power7Problem()
		if err != nil {
			return nil, err
		}
		base.NX, base.NY = 53, 42
		base.LoadDensity = pdn.CacheLoad(base.Floorplan, mesh.NewUniformGrid2D(base.Floorplan.Width, base.Floorplan.Height, 53, 42), 1.0)
		tr, err := pdn.SolveTransient(&pdn.TransientProblem{
			Base: base, DecapPerArea: decap, StepFraction: 0.1,
			VRMResponseTime: 1e-6, Dt: 1e-7, Steps: 60,
		})
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, E17Row{
			DecapNFPerMM2: decap * 1e9 / 1e6, // F/m2 -> nF/mm2
			DroopMV:       tr.DroopMV,
			WorstV:        tr.WorstV,
		})
	}
	return res, nil
}

// E18Result is the continuous design refinement (extension E18): the
// coordinate-descent optimizer polishes the grid best under the same
// manufacturability constraints.
type E18Result struct {
	GridBest, Refined design.Evaluation
	// GainPct of the refined point over the grid best.
	GainPct float64
}

// E18RefinedDesign refines the grid-best geometry.
func E18RefinedDesign() (*E18Result, error) {
	e8, err := E8DesignSpace()
	if err != nil {
		return nil, err
	}
	ref, err := design.Refine(e8.Best.Candidate, 676, 27, 1.0, design.DefaultConstraints())
	if err != nil {
		return nil, err
	}
	return &E18Result{
		GridBest: e8.Best,
		Refined:  *ref,
		GainPct:  100 * (ref.NetPowerW/e8.Best.NetPowerW - 1),
	}, nil
}

// E19Result is the counterflow-layout study (extension E19):
// alternating channel directions to even the along-flow temperature
// gradient.
type E19Result struct {
	UniGradientK, CounterGradientK float64
	UniPeakC, CounterPeakC         float64
}

// E19CounterFlow compares the two layouts at the Table II condition.
func E19CounterFlow() (*E19Result, error) {
	grad := func(sol *thermal.Solution) float64 {
		g := sol.Grid
		q := g.NY() / 4
		var first, last float64
		for j := 0; j < q; j++ {
			for i := 0; i < g.NX(); i++ {
				first += sol.ActiveT.At(i, j)
				last += sol.ActiveT.At(i, g.NY()-1-j)
			}
		}
		return (last - first) / float64(q*g.NX())
	}
	uni, err := thermal.Solve(thermal.Power7Problem(676, units.CtoK(27), 0))
	if err != nil {
		return nil, err
	}
	cfp := thermal.Power7Problem(676, units.CtoK(27), 0)
	cfp.Stack.Channels.CounterFlow = true
	cf, err := thermal.Solve(cfp)
	if err != nil {
		return nil, err
	}
	return &E19Result{
		UniGradientK:     grad(uni),
		CounterGradientK: grad(cf),
		UniPeakC:         units.KtoC(uni.PeakT),
		CounterPeakC:     units.KtoC(cf.PeakT),
	}, nil
}

// E20Result is the thermal-capping governor study (extension E20): the
// sustainable chip load across coolant conditions — the dark-silicon
// dial, now driven by the coolant instead of the package.
type E20Result struct {
	Rows []E20Row
}

// E20Row is one coolant condition.
type E20Row struct {
	FlowMLMin       float64
	LimitC          float64
	MaxLoadFraction float64
	SustainedPowerW float64
}

// E20ThermalCap sweeps flow rates at a 60 C junction policy.
func E20ThermalCap() (*E20Result, error) {
	res := &E20Result{}
	for _, flow := range []float64{676, 48, 20, 10} {
		cap, err := cosim.ThermalCap(flow, 27, 60)
		if err != nil {
			return nil, err
		}
		res.Rows = append(res.Rows, E20Row{
			FlowMLMin:       flow,
			LimitC:          60,
			MaxLoadFraction: cap.MaxLoadFraction,
			SustainedPowerW: cap.SustainedPowerW,
		})
	}
	return res, nil
}
