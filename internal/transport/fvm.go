package transport

import (
	"fmt"
	"math"

	"bright/internal/num"
)

// StreamProblem describes 2D steady convection-diffusion in one
// electrolyte stream: x is streamwise (0..Length), y is transverse
// (0 at the electrode wall, Height at the far boundary, which is either
// the channel wall or the co-laminar interface, both treated as no-flux
// for the minor species).
//
// The axial-diffusion term is dropped (parabolic approximation), valid
// for Pe = vL/D >> 1; every configuration in the paper has Pe > 1e4. The
// resulting equations march downstream with one tridiagonal solve per
// station, which is what makes the solver fast enough to sit inside the
// polarization sweep.
type StreamProblem struct {
	Length float64 // m, electrode/streamwise extent
	Height float64 // m, transverse stream extent
	// Velocity returns the streamwise velocity (m/s) at transverse
	// position y in [0, Height]. Use PlateProfile or a custom closure.
	Velocity func(y float64) float64
	// D is the species diffusion coefficient (m2/s).
	D float64
	// CInlet is the inlet (bulk) concentration (mol/m3).
	CInlet float64
	// NX, NY are grid resolutions (streamwise stations, transverse cells).
	NX, NY int
}

// PlateProfile returns a parabolic Poiseuille profile for a gap of the
// given height and mean velocity, u(y) = 6 v (y/h)(1 - y/h).
func PlateProfile(mean, height float64) func(float64) float64 {
	return func(y float64) float64 {
		t := y / height
		return 6 * mean * t * (1 - t)
	}
}

// UniformProfile returns a plug-flow profile (used for interface mixing
// studies where the exact profile is secondary).
func UniformProfile(mean float64) func(float64) float64 {
	return func(float64) float64 { return mean }
}

// Validate reports whether the problem is well posed.
func (p *StreamProblem) Validate() error {
	if p.Length <= 0 || p.Height <= 0 {
		return fmt.Errorf("transport: nonpositive domain %gx%g", p.Length, p.Height)
	}
	if p.D <= 0 {
		return fmt.Errorf("transport: nonpositive diffusivity %g", p.D)
	}
	if p.CInlet < 0 {
		return fmt.Errorf("transport: negative inlet concentration %g", p.CInlet)
	}
	if p.Velocity == nil {
		return fmt.Errorf("transport: nil velocity profile")
	}
	if p.NX < 2 || p.NY < 3 {
		return fmt.Errorf("transport: grid too coarse (%dx%d)", p.NX, p.NY)
	}
	return nil
}

// StreamSolution is the marched concentration field and wall quantities.
type StreamSolution struct {
	// X are streamwise station positions (cell centers), length NX.
	X []float64
	// Y are transverse cell centers, length NY.
	Y []float64
	// C is the concentration field, C[ix][iy], mol/m3.
	C [][]float64
	// WallFlux is the species flux into the wall at each station
	// (mol/(m2 s), positive = species consumed at the electrode).
	WallFlux []float64
	// WallConc is the surface concentration at each station (mol/m3).
	WallConc []float64
	// KmAvg is the effective average mass-transfer coefficient (m/s),
	// defined by total wall consumption / (area * (CInlet - CWall_avg)).
	// Only meaningful for Dirichlet-wall solves.
	KmAvg float64
}

// SolveDirichletWall solves the stream with a fixed wall concentration
// cWall (the diffusion-limited electrode condition; cWall = 0 gives the
// limiting current). It returns the field and the effective km, which is
// the quantity the correlation path approximates.
func (p *StreamProblem) SolveDirichletWall(cWall float64) (*StreamSolution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if cWall < 0 {
		return nil, fmt.Errorf("transport: negative wall concentration %g", cWall)
	}
	sol := p.newSolution()
	dy := p.Height / float64(p.NY)
	dx := p.Length / float64(p.NX)

	c := make([]float64, p.NY)
	for i := range c {
		c[i] = p.CInlet
	}
	// March stations. Implicit in y: u_j (c_j - cPrev_j)/dx = D d2c/dy2.
	sub := make([]float64, p.NY)
	diag := make([]float64, p.NY)
	sup := make([]float64, p.NY)
	rhs := make([]float64, p.NY)
	totalFlux := 0.0
	for ix := 0; ix < p.NX; ix++ {
		for j := 0; j < p.NY; j++ {
			y := (float64(j) + 0.5) * dy
			u := p.Velocity(y)
			if u <= 0 {
				u = 1e-12 // stagnant film: pure diffusion balance
			}
			adv := u / dx
			dif := p.D / (dy * dy)
			diag[j] = adv + 2*dif
			sub[j] = -dif
			sup[j] = -dif
			rhs[j] = adv * c[j]
			switch j {
			case 0:
				// Electrode wall: Dirichlet via ghost cell at distance
				// dy/2: flux = D*(c_0 - cWall)/(dy/2).
				diag[j] = adv + dif + 2*dif
				rhs[j] += 2 * dif * cWall
				sub[j] = 0
			case p.NY - 1:
				// Far boundary: no flux.
				diag[j] = adv + dif
				sup[j] = 0
			}
		}
		next, err := num.SolveTridiag(sub, diag, sup, rhs)
		if err != nil {
			return nil, fmt.Errorf("transport: station %d: %w", ix, err)
		}
		c = next
		flux := p.D * (c[0] - cWall) / (dy / 2)
		sol.WallFlux[ix] = flux
		sol.WallConc[ix] = cWall
		totalFlux += flux * dx
		copy(sol.C[ix], c)
	}
	if p.CInlet > cWall {
		sol.KmAvg = totalFlux / (p.Length * (p.CInlet - cWall))
	}
	return sol, nil
}

// SolveFluxWall solves the stream with a prescribed wall flux profile
// flux(x) in mol/(m2 s) (positive = consumption). This is the coupling
// interface used by the flow-cell solver: kinetics set the local flux,
// transport returns the surface concentration it implies.
func (p *StreamProblem) SolveFluxWall(flux func(x float64) float64) (*StreamSolution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	if flux == nil {
		return nil, fmt.Errorf("transport: nil flux profile")
	}
	sol := p.newSolution()
	dy := p.Height / float64(p.NY)
	dx := p.Length / float64(p.NX)
	c := make([]float64, p.NY)
	for i := range c {
		c[i] = p.CInlet
	}
	sub := make([]float64, p.NY)
	diag := make([]float64, p.NY)
	sup := make([]float64, p.NY)
	rhs := make([]float64, p.NY)
	for ix := 0; ix < p.NX; ix++ {
		x := (float64(ix) + 0.5) * dx
		f := flux(x)
		for j := 0; j < p.NY; j++ {
			y := (float64(j) + 0.5) * dy
			u := p.Velocity(y)
			if u <= 0 {
				u = 1e-12
			}
			adv := u / dx
			dif := p.D / (dy * dy)
			diag[j] = adv + 2*dif
			sub[j] = -dif
			sup[j] = -dif
			rhs[j] = adv * c[j]
			switch j {
			case 0:
				// Neumann: consumption flux f leaves through the wall.
				diag[j] = adv + dif
				rhs[j] -= f / dy
				sub[j] = 0
			case p.NY - 1:
				diag[j] = adv + dif
				sup[j] = 0
			}
		}
		next, err := num.SolveTridiag(sub, diag, sup, rhs)
		if err != nil {
			return nil, fmt.Errorf("transport: station %d: %w", ix, err)
		}
		c = next
		sol.WallFlux[ix] = f
		// Surface concentration: extrapolate from the first cell with
		// the flux gradient, C_s = c_0 - f*(dy/2)/D.
		sol.WallConc[ix] = c[0] - f*(dy/2)/p.D
		copy(sol.C[ix], c)
	}
	return sol, nil
}

func (p *StreamProblem) newSolution() *StreamSolution {
	sol := &StreamSolution{
		X:        make([]float64, p.NX),
		Y:        make([]float64, p.NY),
		C:        make([][]float64, p.NX),
		WallFlux: make([]float64, p.NX),
		WallConc: make([]float64, p.NX),
	}
	dx := p.Length / float64(p.NX)
	dy := p.Height / float64(p.NY)
	for i := range sol.X {
		sol.X[i] = (float64(i) + 0.5) * dx
		sol.C[i] = make([]float64, p.NY)
	}
	for j := range sol.Y {
		sol.Y[j] = (float64(j) + 0.5) * dy
	}
	return sol
}

// OutletDeficit returns the species flow deficit at the outlet relative
// to the inlet (mol/s per unit channel depth), which must equal the
// integrated wall consumption for a conservative scheme; the tests
// assert this balance.
func (p *StreamProblem) OutletDeficit(sol *StreamSolution) float64 {
	dy := p.Height / float64(p.NY)
	in, out := 0.0, 0.0
	last := sol.C[len(sol.C)-1]
	for j := 0; j < p.NY; j++ {
		y := (float64(j) + 0.5) * dy
		u := p.Velocity(y)
		in += u * p.CInlet * dy
		out += u * last[j] * dy
	}
	return in - out
}

// IntegratedWallFlux returns the total wall consumption (mol/s per unit
// channel depth).
func IntegratedWallFlux(p *StreamProblem, sol *StreamSolution) float64 {
	dx := p.Length / float64(p.NX)
	s := 0.0
	for _, f := range sol.WallFlux {
		s += f * dx
	}
	return s
}

// InterfaceMixing solves the two-stream inter-diffusion problem: a step
// initial profile (c = cInlet for y < Height/2, 0 above) advected
// downstream with no wall fluxes, and returns the 1-sigma mixing width
// at the outlet, defined via the second moment of dc/dy around the
// interface. Cross-checks the MixingWidth closed form.
func InterfaceMixing(length, height, v, d float64, nx, ny int) (float64, error) {
	p := &StreamProblem{
		Length: length, Height: height,
		Velocity: UniformProfile(v),
		D:        d, CInlet: 1, NX: nx, NY: ny,
	}
	if err := p.Validate(); err != nil {
		return 0, err
	}
	dy := height / float64(ny)
	dx := length / float64(nx)
	c := make([]float64, ny)
	for j := range c {
		y := (float64(j) + 0.5) * dy
		if y < height/2 {
			c[j] = 1
		}
	}
	sub := make([]float64, ny)
	diag := make([]float64, ny)
	sup := make([]float64, ny)
	rhs := make([]float64, ny)
	for ix := 0; ix < nx; ix++ {
		for j := 0; j < ny; j++ {
			adv := v / dx
			dif := d / (dy * dy)
			diag[j] = adv + 2*dif
			sub[j] = -dif
			sup[j] = -dif
			rhs[j] = adv * c[j]
			if j == 0 || j == ny-1 {
				diag[j] = adv + dif
				if j == 0 {
					sub[j] = 0
				} else {
					sup[j] = 0
				}
			}
		}
		next, err := num.SolveTridiag(sub, diag, sup, rhs)
		if err != nil {
			return 0, err
		}
		c = next
	}
	// Second moment of -dc/dy about the interface.
	mid := height / 2
	var m0, m2 float64
	for j := 0; j < ny-1; j++ {
		g := (c[j] - c[j+1]) / dy // -dc/dy at face j+1/2
		y := (float64(j) + 1) * dy
		m0 += g * dy
		m2 += g * (y - mid) * (y - mid) * dy
	}
	if m0 <= 0 {
		return 0, fmt.Errorf("transport: degenerate interface profile")
	}
	return math.Sqrt(m2 / m0), nil
}
