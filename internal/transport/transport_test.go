package transport

import (
	"math"
	"testing"
)

func approx(t *testing.T, got, want, rel float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > rel*math.Abs(want) {
		t.Errorf("%s: got %g want %g (rel tol %g)", msg, got, want, rel)
	}
}

func TestWallShearRate(t *testing.T) {
	approx(t, WallShearRate(1.5, 150e-6), 6*1.5/150e-6, 1e-12, "gamma")
}

func TestLevequeScaling(t *testing.T) {
	d, gamma := 1.7e-10, 600.0
	// km ~ x^{-1/3}.
	k1 := KmLevequeLocal(d, gamma, 1e-3)
	k8 := KmLevequeLocal(d, gamma, 8e-3)
	approx(t, k1/k8, 2.0, 1e-9, "x^-1/3 scaling")
	// Average = 1.5 * local at L.
	approx(t, KmLevequeAvg(d, gamma, 8e-3), 1.5*k8, 1e-12, "average factor")
	// km ~ gamma^{1/3}: 8x shear doubles km.
	approx(t, KmLevequeLocal(d, 8*gamma, 1e-3)/k1, 2.0, 1e-9, "gamma^1/3 scaling")
	// km ~ D^{2/3}.
	approx(t, KmLevequeLocal(8*d, gamma, 1e-3)/k1, 4.0, 1e-9, "D^2/3 scaling")
}

func TestGraetzLimits(t *testing.T) {
	d := 1.3e-10
	dh := 2.67e-4
	// Very long electrode: fully developed Sherwood.
	kmLong := KmGraetz(d, 1e-6, dh, 1e3, 3.66)
	approx(t, kmLong, 3.66*d/dh, 0.01, "fully developed limit")
	// Short electrode: entry-dominated, increases with velocity^(1/3).
	km1 := KmGraetz(d, 0.5, dh, 0.022, 0)
	km8 := KmGraetz(d, 4.0, dh, 0.022, 0)
	approx(t, km8/km1, 2.0, 0.02, "entry-region v^1/3 scaling")
	if km1 <= kmLong {
		t.Fatal("entry region must beat fully developed")
	}
}

func TestFlowRateCubeRootLimitingCurrentShape(t *testing.T) {
	// The central Fig. 3 shape: limiting current grows ~ Q^(1/3). The
	// Leveque average km over a fixed electrode with gamma ~ Q must obey
	// km(120 Q)/km(Q) = 120^(1/3) ~ 4.93 (the 2.5 -> 300 uL/min ratio).
	d, l := 1.7e-10, 33e-3
	g1 := WallShearRate(1.39e-4, 150e-6)   // 2.5 uL/min in the Table I cell
	g120 := WallShearRate(1.67e-2, 150e-6) // 300 uL/min
	r := KmLevequeAvg(d, g120, l) / KmLevequeAvg(d, g1, l)
	approx(t, r, math.Cbrt(120), 1e-2, "Q^(1/3) limiting-current growth")
}

func TestMixingWidth(t *testing.T) {
	// w = sqrt(2 D x / v); at Table I low flow the interface broadens
	// to a significant fraction of the 1 mm stream half-width.
	w := MixingWidth(1.7e-10, 33e-3, 1.39e-4)
	if w < 1e-4 || w > 5e-4 {
		t.Fatalf("mixing width %g outside expected range", w)
	}
	// Monotone: slower flow mixes more.
	if MixingWidth(1.7e-10, 33e-3, 1.67e-2) >= w {
		t.Fatal("faster flow must mix less")
	}
	if MixingWidth(1e-10, 0, 1) != 0 {
		t.Fatal("zero length, zero width")
	}
}

func TestPeclet(t *testing.T) {
	// Table II: Pe = vL/D huge => parabolic marching valid.
	pe := PecletNumber(1.4, 22e-3, 1.26e-10)
	if pe < 1e6 {
		t.Fatalf("Pe = %g unexpectedly small", pe)
	}
}

func kjeangStream(nx, ny int) *StreamProblem {
	// Table I validation-cell anode stream at 60 uL/min.
	v := 60e-9 / 60 / (2e-3 * 150e-6) // flow over area
	return &StreamProblem{
		Length:   33e-3,
		Height:   150e-6,
		Velocity: PlateProfile(v, 150e-6),
		D:        1.7e-10,
		CInlet:   920,
		NX:       nx,
		NY:       ny,
	}
}

func TestDirichletWallAgainstLeveque(t *testing.T) {
	p := kjeangStream(400, 80)
	sol, err := p.SolveDirichletWall(0)
	if err != nil {
		t.Fatal(err)
	}
	v := 60e-9 / 60 / (2e-3 * 150e-6)
	gamma := WallShearRate(v, 150e-6)
	kmCorr := KmLevequeAvg(p.D, gamma, p.Length)
	// FVM and Leveque must agree within ~15% (Leveque assumes a thin
	// boundary layer; at this Gz it is mildly optimistic).
	if math.Abs(sol.KmAvg-kmCorr)/kmCorr > 0.15 {
		t.Fatalf("FVM km %g vs Leveque %g", sol.KmAvg, kmCorr)
	}
}

func TestDirichletWallMassConservation(t *testing.T) {
	p := kjeangStream(200, 60)
	sol, err := p.SolveDirichletWall(0)
	if err != nil {
		t.Fatal(err)
	}
	deficit := p.OutletDeficit(sol)
	consumed := IntegratedWallFlux(p, sol)
	approx(t, consumed, deficit, 1e-6, "wall consumption equals outlet deficit")
	if consumed <= 0 {
		t.Fatal("consumption must be positive")
	}
}

func TestDirichletWallMonotoneField(t *testing.T) {
	p := kjeangStream(100, 40)
	sol, err := p.SolveDirichletWall(0)
	if err != nil {
		t.Fatal(err)
	}
	last := sol.C[len(sol.C)-1]
	// Concentration grows away from the absorbing wall.
	for j := 1; j < len(last); j++ {
		if last[j] < last[j-1]-1e-9 {
			t.Fatalf("non-monotone profile at j=%d: %g < %g", j, last[j], last[j-1])
		}
	}
	// All concentrations within [0, CInlet].
	for ix := range sol.C {
		for j := range sol.C[ix] {
			c := sol.C[ix][j]
			if c < -1e-9 || c > p.CInlet*(1+1e-9) {
				t.Fatalf("out-of-bounds concentration %g at (%d,%d)", c, ix, j)
			}
		}
	}
	// Wall flux decays downstream (boundary layer growth).
	if sol.WallFlux[len(sol.WallFlux)-1] >= sol.WallFlux[0] {
		t.Fatal("wall flux must decay downstream")
	}
}

func TestDirichletGridConvergence(t *testing.T) {
	ref, err := kjeangStream(800, 160).SolveDirichletWall(0)
	if err != nil {
		t.Fatal(err)
	}
	var prevErr = math.Inf(1)
	for _, n := range []int{50, 100, 200} {
		sol, err := kjeangStream(n*5, n).SolveDirichletWall(0)
		if err != nil {
			t.Fatal(err)
		}
		e := math.Abs(sol.KmAvg-ref.KmAvg) / ref.KmAvg
		if e > prevErr*1.05 {
			t.Fatalf("not converging: n=%d err=%g prev=%g", n, e, prevErr)
		}
		prevErr = e
	}
	if prevErr > 0.03 {
		t.Fatalf("finest error %g", prevErr)
	}
}

func TestFluxWallRecoversDirichletSolution(t *testing.T) {
	// Feed the flux profile from a Dirichlet solve back through the
	// Neumann solver: the recovered wall concentration must be ~cWall.
	p := kjeangStream(300, 80)
	dir, err := p.SolveDirichletWall(0)
	if err != nil {
		t.Fatal(err)
	}
	dx := p.Length / float64(p.NX)
	fluxAt := func(x float64) float64 {
		ix := int(x / dx)
		if ix < 0 {
			ix = 0
		}
		if ix >= p.NX {
			ix = p.NX - 1
		}
		return dir.WallFlux[ix]
	}
	neu, err := p.SolveFluxWall(fluxAt)
	if err != nil {
		t.Fatal(err)
	}
	// Compare surface concentrations away from the leading edge.
	for ix := p.NX / 4; ix < p.NX; ix += p.NX / 8 {
		if math.Abs(neu.WallConc[ix]) > 0.05*p.CInlet {
			t.Fatalf("station %d: recovered wall conc %g not ~0", ix, neu.WallConc[ix])
		}
	}
}

func TestFluxWallZeroFluxKeepsInlet(t *testing.T) {
	p := kjeangStream(50, 30)
	sol, err := p.SolveFluxWall(func(float64) float64 { return 0 })
	if err != nil {
		t.Fatal(err)
	}
	for ix := range sol.C {
		for j := range sol.C[ix] {
			approx(t, sol.C[ix][j], p.CInlet, 1e-9, "zero flux preserves inlet")
		}
	}
}

func TestInterfaceMixingMatchesClosedForm(t *testing.T) {
	// Uniform flow step diffusion: second-moment width must match
	// sqrt(2 D L / v) while the domain wall is far away.
	v, d, l, h := 5e-3, 1.7e-10, 33e-3, 2e-3
	w, err := InterfaceMixing(l, h, v, d, 300, 400)
	if err != nil {
		t.Fatal(err)
	}
	want := MixingWidth(d, l, v)
	if math.Abs(w-want)/want > 0.1 {
		t.Fatalf("FVM width %g vs closed form %g", w, want)
	}
}

func TestValidation(t *testing.T) {
	good := kjeangStream(10, 10)
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := *good
	bad.D = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero D accepted")
	}
	bad = *good
	bad.NY = 1
	if err := bad.Validate(); err == nil {
		t.Fatal("tiny grid accepted")
	}
	bad = *good
	bad.Velocity = nil
	if err := bad.Validate(); err == nil {
		t.Fatal("nil velocity accepted")
	}
	if _, err := good.SolveDirichletWall(-1); err == nil {
		t.Fatal("negative wall concentration accepted")
	}
	if _, err := good.SolveFluxWall(nil); err == nil {
		t.Fatal("nil flux accepted")
	}
}
