// Package transport solves convective-diffusive species transport in
// microchannel streams: engineering correlations (Leveque, Graetz) for
// electrode mass-transfer coefficients, the co-laminar interface mixing
// width, and a finite-volume marching solver for the full 2D
// concentration field. This package, together with cfd, replaces the
// species-conservation physics (paper eq. (12)) that the authors solved
// in COMSOL.
package transport

import (
	"fmt"
	"math"
)

// WallShearRate returns the wall shear rate (1/s) of fully developed
// laminar flow between parallel plates of gap h at mean velocity v:
// gamma = 6 v / h. It is the standard near-electrode approximation for
// high-aspect channels and is accurate to ~15% for the 2:1 ducts used in
// Table II.
func WallShearRate(meanVelocity, gap float64) float64 {
	return 6 * meanVelocity / gap
}

// KmLevequeLocal returns the local mass-transfer coefficient (m/s) at
// streamwise position x from the electrode leading edge for diffusion
// coefficient d and wall shear rate gamma (Leveque similarity solution):
//
//	km(x) = (gamma d^2 / (9 x))^(1/3) / Gamma(4/3)
func KmLevequeLocal(d, gamma, x float64) float64 {
	if x <= 0 {
		panic(fmt.Sprintf("transport: nonpositive x %g", x))
	}
	const gamma43 = 0.8929795115692492 // Gamma(4/3)
	return math.Cbrt(gamma*d*d/(9*x)) / gamma43
}

// KmLevequeAvg returns the length-averaged Leveque mass-transfer
// coefficient over an electrode of length l: the average of x^(-1/3) is
// (3/2) of the value at x=l.
func KmLevequeAvg(d, gamma, l float64) float64 {
	return 1.5 * KmLevequeLocal(d, gamma, l)
}

// KmGraetz returns the average mass-transfer coefficient from the
// combined Graetz-entry correlation
//
//	Sh = (Sh_inf^3 + 1.61^3 * Gz)^(1/3),  Gz = Re Sc Dh / L
//
// which recovers the Leveque scaling for short electrodes and the fully
// developed Sherwood number Sh_inf for very long ones. shInf defaults to
// 3.66 (constant-concentration wall in a circular-duct-equivalent) when
// zero is passed.
func KmGraetz(d, v, dh, l, shInf float64) float64 {
	if shInf <= 0 {
		shInf = 3.66
	}
	gz := v * dh * dh / (d * l) // = Re*Sc*Dh/L
	sh := math.Cbrt(shInf*shInf*shInf + 1.61*1.61*1.61*gz)
	return sh * d / dh
}

// MixingWidth returns the diffusive broadening of the co-laminar
// interface after flowing a distance x at mean velocity v:
// w = sqrt(2 d x / v) (one-sigma width on each side of the interface).
// The co-laminar membrane-less design stays functional while w remains
// small against the stream half-width; see Channel.CrossoverCurrent in
// package flowcell for the resulting parasitic loss.
func MixingWidth(d, x, v float64) float64 {
	if v <= 0 {
		panic(fmt.Sprintf("transport: nonpositive velocity %g", v))
	}
	if x < 0 {
		panic(fmt.Sprintf("transport: negative x %g", x))
	}
	return math.Sqrt(2 * d * x / v)
}

// PecletNumber returns Pe = v L / d, the convection/diffusion ratio used
// to verify that axial diffusion is negligible (Pe >> 1) before applying
// the parabolic marching solver.
func PecletNumber(v, l, d float64) float64 { return v * l / d }
