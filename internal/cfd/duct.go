// Package cfd models steady laminar flow in rectangular microchannels:
// exact series solutions for the velocity profile and flow resistance,
// engineering correlations (friction factor fRe, Nusselt number, entrance
// lengths) and a finite-volume Poiseuille solver used to cross-validate
// the analytic path. Together these replace the momentum (Navier-Stokes)
// physics the paper obtained from COMSOL: at the channel Reynolds numbers
// involved (Re < ~200) the flow is fully laminar and unidirectional, so
// the exact duct solutions are the appropriate model.
package cfd

import (
	"fmt"
	"math"
)

// Channel describes a straight rectangular microchannel.
type Channel struct {
	Width  float64 // m, the "b" dimension (in-plane)
	Height float64 // m, the "a" dimension (etch depth)
	Length float64 // m, streamwise
}

// Validate reports whether the channel dimensions are physical.
func (c Channel) Validate() error {
	if c.Width <= 0 || c.Height <= 0 || c.Length <= 0 {
		return fmt.Errorf("cfd: nonpositive channel dimension %+v", c)
	}
	return nil
}

// Area returns the cross-sectional area in m2.
func (c Channel) Area() float64 { return c.Width * c.Height }

// Perimeter returns the wetted perimeter in m.
func (c Channel) Perimeter() float64 { return 2 * (c.Width + c.Height) }

// HydraulicDiameter returns Dh = 4A/P in m.
func (c Channel) HydraulicDiameter() float64 { return 4 * c.Area() / c.Perimeter() }

// AspectRatio returns the short-side / long-side ratio in (0, 1].
func (c Channel) AspectRatio() float64 {
	if c.Width < c.Height {
		return c.Width / c.Height
	}
	return c.Height / c.Width
}

// Fluid carries the transport properties needed by the hydrodynamic and
// thermal models.
type Fluid struct {
	Density             float64 // kg/m3
	Viscosity           float64 // Pa.s (dynamic)
	ThermalConductivity float64 // W/(m.K)
	HeatCapacityVol     float64 // J/(m3.K) volumetric heat capacity (rho*cp)
}

// Validate reports whether the fluid properties are physical.
func (f Fluid) Validate() error {
	if f.Density <= 0 || f.Viscosity <= 0 {
		return fmt.Errorf("cfd: nonpositive density/viscosity %+v", f)
	}
	return nil
}

// Reynolds returns the channel Reynolds number at mean velocity v.
func Reynolds(c Channel, f Fluid, v float64) float64 {
	return f.Density * v * c.HydraulicDiameter() / f.Viscosity
}

// MeanVelocity converts a volumetric flow rate (m3/s) to the mean
// velocity in the channel.
func MeanVelocity(c Channel, flowRate float64) float64 { return flowRate / c.Area() }

// FRe returns the laminar friction constant f*Re for a rectangular duct
// of the channel's aspect ratio, based on the hydraulic diameter
// (Shah & London, "Laminar Flow Forced Convection in Ducts", 1978).
// Limits: 96 for parallel plates (aspect -> 0), 56.91 for a square duct.
func FRe(aspect float64) float64 {
	if aspect <= 0 || aspect > 1 {
		panic(fmt.Sprintf("cfd: aspect ratio %g out of (0,1]", aspect))
	}
	a := aspect
	return 96 * (1 - 1.3553*a + 1.9467*a*a - 1.7012*a*a*a + 0.9564*a*a*a*a - 0.2537*a*a*a*a*a)
}

// NusseltH1 returns the fully developed laminar Nusselt number for a
// rectangular duct with the H1 boundary condition (axially constant heat
// flux, peripherally constant temperature), the relevant condition for a
// chip-backside microchannel heat sink (Shah & London).
// Limits: 8.235 for parallel plates, 3.608 for a square duct.
func NusseltH1(aspect float64) float64 {
	if aspect <= 0 || aspect > 1 {
		panic(fmt.Sprintf("cfd: aspect ratio %g out of (0,1]", aspect))
	}
	a := aspect
	return 8.235 * (1 - 2.0421*a + 3.0853*a*a - 2.4765*a*a*a + 1.0578*a*a*a*a - 0.1861*a*a*a*a*a)
}

// HeatTransferCoefficient returns the fully developed convective
// coefficient h = Nu*k/Dh in W/(m2.K) for the duct walls.
func HeatTransferCoefficient(c Channel, f Fluid) float64 {
	return NusseltH1(c.AspectRatio()) * f.ThermalConductivity / c.HydraulicDiameter()
}

// HydrodynamicEntranceLength returns the developing length
// L = 0.05 Re Dh (standard laminar estimate).
func HydrodynamicEntranceLength(c Channel, f Fluid, v float64) float64 {
	return 0.05 * Reynolds(c, f, v) * c.HydraulicDiameter()
}

// PressureGradient returns -dp/dx (Pa/m, positive for flow in +x) for
// fully developed laminar flow at mean velocity v using fRe.
func PressureGradient(c Channel, f Fluid, v float64) float64 {
	dh := c.HydraulicDiameter()
	return FRe(c.AspectRatio()) * f.Viscosity * v / (2 * dh * dh)
}

// seriesTerms controls the truncation of the exact duct solutions. The
// series converge like 1/n^5; 40 odd terms give ~1e-12 relative accuracy.
const seriesTerms = 40

// ExactFlowRate returns the volumetric flow rate (m3/s) for a given
// pressure gradient G = -dp/dx using the exact series solution for a
// rectangular duct (White, Viscous Fluid Flow):
//
//	Q = (4 b a^3 G)/(3 mu) * [1 - (192 a)/(pi^5 b) * sum tanh(n pi b / 2a)/n^5]
//
// with 2a = short side, 2b = long side.
func ExactFlowRate(c Channel, f Fluid, gradient float64) float64 {
	short, long := c.Height, c.Width
	if short > long {
		short, long = long, short
	}
	a := short / 2
	b := long / 2
	sum := 0.0
	for k := 0; k < seriesTerms; k++ {
		n := float64(2*k + 1)
		sum += math.Tanh(n*math.Pi*b/(2*a)) / math.Pow(n, 5)
	}
	factor := 1 - (192*a/(math.Pi*math.Pi*math.Pi*math.Pi*math.Pi*b))*sum
	return (4 * b * a * a * a * gradient / (3 * f.Viscosity)) * factor
}

// ExactPressureGradient inverts ExactFlowRate: the pressure gradient
// needed to drive the given flow rate. The relation is linear, so the
// inverse is a single division.
func ExactPressureGradient(c Channel, f Fluid, flowRate float64) float64 {
	unit := ExactFlowRate(c, f, 1.0)
	return flowRate / unit
}

// ExactVelocity returns the local streamwise velocity at cross-section
// position (y, z) for pressure gradient G = -dp/dx. Coordinates are
// measured from the duct center: |y| <= long/2, |z| <= short/2.
func ExactVelocity(c Channel, f Fluid, gradient, y, z float64) float64 {
	short, long := c.Height, c.Width
	if short > long {
		short, long = long, short
		y, z = z, y
	}
	a := short / 2
	b := long / 2
	// White's form: u(y,z) with z across the short side.
	sum := 0.0
	for k := 0; k < seriesTerms; k++ {
		n := float64(2*k + 1)
		sign := 1.0
		if k%2 == 1 {
			sign = -1
		}
		sum += sign / (n * n * n) *
			(1 - math.Cosh(n*math.Pi*y/(2*a))/math.Cosh(n*math.Pi*b/(2*a))) *
			math.Cos(n*math.Pi*z/(2*a))
	}
	return (16 * a * a * gradient / (f.Viscosity * math.Pi * math.Pi * math.Pi)) * sum
}

// ExactFReCheck computes fRe from the exact series solution, providing an
// internal consistency check against the FRe correlation.
func ExactFReCheck(c Channel, f Fluid) float64 {
	g := 1.0 // arbitrary gradient; fRe is geometry-only
	q := ExactFlowRate(c, f, g)
	v := q / c.Area()
	dh := c.HydraulicDiameter()
	// G = fRe * mu * v / (2 Dh^2)  =>  fRe = 2 G Dh^2 / (mu v)
	return 2 * g * dh * dh / (f.Viscosity * v)
}

// WallShearMeanVelocityRatio returns u_max/u_mean for the duct, from the
// exact solution. For parallel plates this is 1.5, for a square duct
// about 2.096.
func WallShearMeanVelocityRatio(c Channel, f Fluid) float64 {
	g := 1.0
	umax := ExactVelocity(c, f, g, 0, 0)
	v := ExactFlowRate(c, f, g) / c.Area()
	return umax / v
}
