package cfd

import (
	"math"
	"testing"
)

func TestPoiseuilleMatchesExactSeries(t *testing.T) {
	c := power7Channel
	g := 1e5
	sol, err := SolvePoiseuille(c, vanadium, g, 40, 80)
	if err != nil {
		t.Fatal(err)
	}
	qExact := ExactFlowRate(c, vanadium, g)
	if math.Abs(sol.FlowRate-qExact)/qExact > 0.01 {
		t.Fatalf("FVM flow rate %g vs exact %g", sol.FlowRate, qExact)
	}
	uMaxExact := ExactVelocity(c, vanadium, g, 0, 0)
	if math.Abs(sol.UMax-uMaxExact)/uMaxExact > 0.02 {
		t.Fatalf("FVM u_max %g vs exact %g", sol.UMax, uMaxExact)
	}
}

func TestPoiseuilleGridConvergence(t *testing.T) {
	c := Channel{Width: 300e-6, Height: 300e-6, Length: 1}
	g := 5e4
	qExact := ExactFlowRate(c, vanadium, g)
	var prevErr float64 = math.Inf(1)
	for _, n := range []int{8, 16, 32} {
		sol, err := SolvePoiseuille(c, vanadium, g, n, n)
		if err != nil {
			t.Fatal(err)
		}
		e := math.Abs(sol.FlowRate-qExact) / qExact
		if e > prevErr*1.001 {
			t.Fatalf("no convergence: n=%d err=%g prev=%g", n, e, prevErr)
		}
		prevErr = e
	}
	if prevErr > 0.02 {
		t.Fatalf("finest-grid error %g too large", prevErr)
	}
}

func TestPoiseuilleLinearInGradient(t *testing.T) {
	c := power7Channel
	s1, err := SolvePoiseuille(c, vanadium, 1e4, 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	s2, err := SolvePoiseuille(c, vanadium, 2e4, 16, 32)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(s2.FlowRate-2*s1.FlowRate)/s2.FlowRate > 1e-6 {
		t.Fatalf("Stokes linearity violated: %g vs 2*%g", s2.FlowRate, s1.FlowRate)
	}
}

func TestPoiseuilleAllVelocitiesPositive(t *testing.T) {
	sol, err := SolvePoiseuille(power7Channel, vanadium, 1e5, 12, 24)
	if err != nil {
		t.Fatal(err)
	}
	for _, u := range sol.U.Data {
		if u <= 0 {
			t.Fatalf("nonpositive interior velocity %g", u)
		}
	}
	if sol.UMean <= 0 || sol.UMax < sol.UMean {
		t.Fatalf("UMean=%g UMax=%g inconsistent", sol.UMean, sol.UMax)
	}
}

func TestPoiseuilleInputValidation(t *testing.T) {
	if _, err := SolvePoiseuille(Channel{}, vanadium, 1, 8, 8); err == nil {
		t.Fatal("invalid channel must error")
	}
	if _, err := SolvePoiseuille(power7Channel, Fluid{}, 1, 8, 8); err == nil {
		t.Fatal("invalid fluid must error")
	}
	if _, err := SolvePoiseuille(power7Channel, vanadium, 1, 2, 8); err == nil {
		t.Fatal("too-coarse grid must error")
	}
}
