package cfd

import (
	"math"
	"testing"
)

// Table I / Table II fluids from the paper.
var vanadium = Fluid{
	Density:             1260,
	Viscosity:           2.53e-3,
	ThermalConductivity: 0.67,
	HeatCapacityVol:     4.187e6,
}

// Table II channel: 200 um x 400 um x 22 mm.
var power7Channel = Channel{Width: 200e-6, Height: 400e-6, Length: 22e-3}

func approx(t *testing.T, got, want, rel float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > rel*math.Abs(want) {
		t.Errorf("%s: got %g want %g (rel tol %g)", msg, got, want, rel)
	}
}

func TestChannelGeometry(t *testing.T) {
	c := power7Channel
	approx(t, c.Area(), 8e-8, 1e-12, "area")
	approx(t, c.Perimeter(), 1.2e-3, 1e-12, "perimeter")
	approx(t, c.HydraulicDiameter(), 4*8e-8/1.2e-3, 1e-12, "Dh")
	approx(t, c.AspectRatio(), 0.5, 1e-12, "aspect")
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := (Channel{}).Validate(); err == nil {
		t.Fatal("zero channel must be invalid")
	}
}

func TestFReLimits(t *testing.T) {
	// Shah & London tabulated values.
	approx(t, FRe(1.0), 56.91, 0.01, "square duct")
	approx(t, FRe(0.5), 62.19, 0.01, "2:1 duct")
	approx(t, FRe(0.125), 82.34, 0.01, "8:1 duct")
	if FRe(1e-6) > 96.001 || FRe(1e-6) < 95.9 {
		t.Fatalf("parallel-plate limit: %g", FRe(1e-6))
	}
}

func TestNusseltH1Limits(t *testing.T) {
	approx(t, NusseltH1(1.0), 3.608, 0.01, "square duct")
	approx(t, NusseltH1(0.5), 4.123, 0.01, "2:1 duct")
	if NusseltH1(1e-6) > 8.236 || NusseltH1(1e-6) < 8.2 {
		t.Fatalf("parallel-plate limit: %g", NusseltH1(1e-6))
	}
}

func TestAspectPanics(t *testing.T) {
	for _, f := range []func(){func() { FRe(0) }, func() { FRe(1.5) }, func() { NusseltH1(-1) }} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatal("expected panic for out-of-range aspect")
				}
			}()
			f()
		}()
	}
}

func TestReynoldsLaminar(t *testing.T) {
	// Paper Sec. III-B: mean velocity ~1.4 m/s in the Table II array.
	re := Reynolds(power7Channel, vanadium, 1.4)
	// Re = 1260*1.4*2.667e-4/2.53e-3 ~ 186: safely laminar.
	approx(t, re, 186, 0.02, "Re at 1.4 m/s")
	if re > 2000 {
		t.Fatal("flow must be laminar for co-laminar operation")
	}
}

func TestMeanVelocityTableII(t *testing.T) {
	// 676 ml/min through 88 channels.
	perChannel := 676e-6 / 60 / 88 // m3/s
	v := MeanVelocity(power7Channel, perChannel)
	// Paper quotes ~1.4 m/s average.
	approx(t, v, 1.4, 0.15, "Table II mean velocity")
}

func TestExactFlowRateMatchesFReCorrelation(t *testing.T) {
	// Exact series fRe vs Shah-London polynomial, several aspects.
	for _, c := range []Channel{
		{Width: 200e-6, Height: 400e-6, Length: 1},
		{Width: 300e-6, Height: 300e-6, Length: 1},
		{Width: 2e-3, Height: 150e-6, Length: 1},
		{Width: 100e-6, Height: 800e-6, Length: 1},
	} {
		exact := ExactFReCheck(c, vanadium)
		corr := FRe(c.AspectRatio())
		if math.Abs(exact-corr)/corr > 0.01 {
			t.Errorf("aspect %.3f: exact fRe %.3f vs correlation %.3f",
				c.AspectRatio(), exact, corr)
		}
	}
}

func TestExactVelocityProfileProperties(t *testing.T) {
	c := power7Channel
	g := 1e5 // Pa/m
	// Centerline is the maximum.
	umax := ExactVelocity(c, vanadium, g, 0, 0)
	if umax <= 0 {
		t.Fatalf("centerline velocity %g", umax)
	}
	// Profile decreases towards the walls and is symmetric.
	u1 := ExactVelocity(c, vanadium, g, c.Width/4, 0)
	u2 := ExactVelocity(c, vanadium, g, -c.Width/4, 0)
	if math.Abs(u1-u2) > 1e-9*umax {
		t.Fatalf("asymmetric profile: %g vs %g", u1, u2)
	}
	if u1 >= umax {
		t.Fatal("off-center velocity must be below centerline")
	}
	// Wall value ~0.
	uw := ExactVelocity(c, vanadium, g, c.Width/2, 0)
	if math.Abs(uw) > 2e-2*umax {
		t.Fatalf("no-slip violated: u_wall = %g (umax %g)", uw, umax)
	}
}

func TestVelocityRatioLimits(t *testing.T) {
	// Square duct: u_max/u_mean ~ 2.096.
	sq := Channel{Width: 1e-3, Height: 1e-3, Length: 1}
	approx(t, WallShearMeanVelocityRatio(sq, vanadium), 2.096, 0.01, "square duct peak ratio")
	// Wide duct -> parallel plates: ratio -> 1.5.
	wide := Channel{Width: 100e-3, Height: 1e-3, Length: 1}
	approx(t, WallShearMeanVelocityRatio(wide, vanadium), 1.5, 0.02, "plate limit peak ratio")
}

func TestPressureGradientConsistency(t *testing.T) {
	// PressureGradient (correlation) vs ExactPressureGradient (series).
	v := 1.4
	q := v * power7Channel.Area()
	gCorr := PressureGradient(power7Channel, vanadium, v)
	gExact := ExactPressureGradient(power7Channel, vanadium, q)
	approx(t, gExact, gCorr, 0.01, "pressure gradient paths agree")
}

func TestEntranceLengthShort(t *testing.T) {
	// Entrance length at Table II conditions is a small fraction of the
	// channel, justifying fully developed correlations.
	l := HydrodynamicEntranceLength(power7Channel, vanadium, 1.4)
	if l > 0.25*power7Channel.Length {
		t.Fatalf("entrance length %g too large vs channel %g", l, power7Channel.Length)
	}
}

func TestHeatTransferCoefficientMagnitude(t *testing.T) {
	h := HeatTransferCoefficient(power7Channel, vanadium)
	// Nu~4.1, k=0.67, Dh=2.67e-4 => h ~ 1.0e4 W/m2K.
	if h < 5e3 || h > 3e4 {
		t.Fatalf("h = %g W/m2K outside plausible microchannel range", h)
	}
}
