package cfd

import (
	"fmt"

	"bright/internal/mesh"
	"bright/internal/num"
)

// PoiseuilleSolution is the result of the finite-volume cross-section
// solve: the velocity field u(y, z) for a unit (or given) pressure
// gradient, plus integral quantities.
type PoiseuilleSolution struct {
	Grid     *mesh.Grid2D
	U        *mesh.Field2D // streamwise velocity, m/s
	FlowRate float64       // m3/s
	UMean    float64       // m/s
	UMax     float64       // m/s
}

// SolvePoiseuille solves the Poisson problem mu * laplacian(u) = -G with
// no-slip walls on the channel cross-section using a cell-centered finite
// volume discretization, where G is the (positive) pressure gradient
// -dp/dx. It provides a from-first-principles cross-check of the series
// solution in ExactVelocity/ExactFlowRate: the two must agree as the grid
// is refined, which the package tests assert.
func SolvePoiseuille(c Channel, f Fluid, gradient float64, nx, ny int) (*PoiseuilleSolution, error) {
	if err := c.Validate(); err != nil {
		return nil, err
	}
	if err := f.Validate(); err != nil {
		return nil, err
	}
	if nx < 3 || ny < 3 {
		return nil, fmt.Errorf("cfd: Poiseuille grid too coarse (%dx%d)", nx, ny)
	}
	g := mesh.NewUniformGrid2D(c.Width, c.Height, nx, ny)
	n := g.NumCells()
	co := num.NewCOO(n, n)
	b := make([]float64, n)

	// For each cell: sum of face conductances mu*A_face/d. Walls are
	// no-slip (u=0): a half-cell distance to the wall.
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			row := g.Index(i, j)
			dx := g.X.Widths[i]
			dy := g.Y.Widths[j]
			b[row] = gradient * dx * dy // source: G * cell area

			// West/East faces (normal along X): area dy, distance dx
			// between centers or dx/2 to a wall.
			addFace := func(ni, nj int, faceArea, dist float64) {
				cond := f.Viscosity * faceArea / dist
				co.Add(row, row, cond)
				if ni >= 0 && ni < nx && nj >= 0 && nj < ny {
					co.Add(row, g.Index(ni, nj), -cond)
				}
				// Wall neighbour contributes 0 to RHS (u_wall = 0).
			}
			if i > 0 {
				addFace(i-1, j, dy, g.X.CenterSpacing(i-1))
			} else {
				addFace(-1, j, dy, dx/2)
			}
			if i < nx-1 {
				addFace(i+1, j, dy, g.X.CenterSpacing(i))
			} else {
				addFace(nx, j, dy, dx/2)
			}
			if j > 0 {
				addFace(i, j-1, dx, g.Y.CenterSpacing(j-1))
			} else {
				addFace(i, -1, dx, dy/2)
			}
			if j < ny-1 {
				addFace(i, j+1, dx, g.Y.CenterSpacing(j))
			} else {
				addFace(i, ny, dx, dy/2)
			}
		}
	}
	a := co.ToCSR()
	x := make([]float64, n)
	if _, err := num.CG(a, b, x, num.IterOptions{Tol: 1e-12, MaxIter: 20 * n, M: num.NewJacobi(a)}); err != nil {
		return nil, fmt.Errorf("cfd: Poiseuille solve failed: %w", err)
	}
	sol := &PoiseuilleSolution{Grid: g, U: &mesh.Field2D{Grid: g, Data: x}}
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			u := sol.U.At(i, j)
			sol.FlowRate += u * g.CellArea(i, j)
			if u > sol.UMax {
				sol.UMax = u
			}
		}
	}
	sol.UMean = sol.FlowRate / c.Area()
	return sol, nil
}
