package hydro

import (
	"math"
	"testing"
)

func tableIIManifold(segFrac float64, z bool) ManifoldConfig {
	chR := ChannelPressureDrop(power7Channel, vanadium, 1.0) // Pa.s/m3
	return ManifoldConfig{
		NChannels:         88,
		ChannelResistance: chR,
		SegmentResistance: segFrac * chR,
		ZType:             z,
	}
}

func TestManifoldWeightsSumToOne(t *testing.T) {
	for _, z := range []bool{false, true} {
		res, err := SolveManifold(tableIIManifold(1e-4, z))
		if err != nil {
			t.Fatal(err)
		}
		sum := 0.0
		for _, w := range res.Weights {
			if w <= 0 {
				t.Fatalf("nonpositive weight %g", w)
			}
			sum += w
		}
		if math.Abs(sum-1) > 1e-9 {
			t.Fatalf("weights sum %g", sum)
		}
	}
}

func TestIdealHeadersEvenSplit(t *testing.T) {
	cfg := tableIIManifold(0, false)
	res, err := SolveManifold(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if res.MaldistributionPct != 0 {
		t.Fatalf("ideal headers maldistribution %g", res.MaldistributionPct)
	}
	for _, w := range res.Weights {
		if math.Abs(w-1.0/88) > 1e-12 {
			t.Fatalf("uneven ideal split: %g", w)
		}
	}
}

func TestSingleChannelTrivial(t *testing.T) {
	res, err := SolveManifold(ManifoldConfig{NChannels: 1, ChannelResistance: 1, SegmentResistance: 1})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Weights) != 1 || res.Weights[0] != 1 {
		t.Fatalf("single channel weights %v", res.Weights)
	}
}

func TestUTypeFavorsNearChannels(t *testing.T) {
	res, err := SolveManifold(tableIIManifold(1e-4, false))
	if err != nil {
		t.Fatal(err)
	}
	// U-type: both headers tap at the same end, so near channels see
	// the full driving pressure and far channels a reduced one.
	if res.FirstToLastRatio <= 1 {
		t.Fatalf("U-type first/last %g should exceed 1", res.FirstToLastRatio)
	}
	// Monotone decay along the array.
	for k := 1; k < len(res.Weights); k++ {
		if res.Weights[k] > res.Weights[k-1]*(1+1e-9) {
			t.Fatalf("U-type weights not monotone at %d", k)
		}
	}
}

func TestZTypeSymmetric(t *testing.T) {
	res, err := SolveManifold(tableIIManifold(1e-4, true))
	if err != nil {
		t.Fatal(err)
	}
	// Z-type: the end channels match by symmetry.
	if math.Abs(res.FirstToLastRatio-1) > 1e-6 {
		t.Fatalf("Z-type first/last %g", res.FirstToLastRatio)
	}
	// And the profile is symmetric about the center.
	n := len(res.Weights)
	for k := 0; k < n/2; k++ {
		if math.Abs(res.Weights[k]-res.Weights[n-1-k]) > 1e-9*res.Weights[k] {
			t.Fatalf("Z-type asymmetric at %d", k)
		}
	}
}

func TestZTypeBeatsUType(t *testing.T) {
	for _, segFrac := range []float64{1e-5, 1e-4, 1e-3} {
		u, err := SolveManifold(tableIIManifold(segFrac, false))
		if err != nil {
			t.Fatal(err)
		}
		z, err := SolveManifold(tableIIManifold(segFrac, true))
		if err != nil {
			t.Fatal(err)
		}
		if z.MaldistributionPct >= u.MaldistributionPct {
			t.Fatalf("segFrac %g: Z %g%% should beat U %g%%",
				segFrac, z.MaldistributionPct, u.MaldistributionPct)
		}
	}
}

func TestMaldistributionGrowsWithSegmentResistance(t *testing.T) {
	prev := -1.0
	for _, segFrac := range []float64{1e-6, 1e-5, 1e-4, 1e-3} {
		res, err := SolveManifold(tableIIManifold(segFrac, true))
		if err != nil {
			t.Fatal(err)
		}
		if res.MaldistributionPct <= prev {
			t.Fatalf("maldistribution not monotone at %g", segFrac)
		}
		prev = res.MaldistributionPct
	}
}

func TestManifoldValidation(t *testing.T) {
	if _, err := SolveManifold(ManifoldConfig{NChannels: 0, ChannelResistance: 1}); err == nil {
		t.Fatal("zero channels accepted")
	}
	if _, err := SolveManifold(ManifoldConfig{NChannels: 2, ChannelResistance: 0}); err == nil {
		t.Fatal("zero channel resistance accepted")
	}
	if _, err := SolveManifold(ManifoldConfig{NChannels: 2, ChannelResistance: 1, SegmentResistance: -1}); err == nil {
		t.Fatal("negative segment resistance accepted")
	}
}
