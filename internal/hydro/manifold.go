package hydro

import (
	"fmt"
	"math"

	"bright/internal/num"
)

// ManifoldConfig describes the U-type (same-side inlet/outlet) or
// Z-type (opposite-side) header arrangement feeding the parallel
// channels. Pressure drops along the headers make the channels see
// different driving pressures — flow maldistribution — which the even-
// split array model ignores. The ladder network here quantifies it and
// feeds per-channel weights to the thermal and electrical models
// (extension E15).
type ManifoldConfig struct {
	// NChannels in the array.
	NChannels int
	// ChannelResistance is the hydraulic resistance of one channel
	// (Pa.s/m3), e.g. from ChannelPressureDrop at unit flow.
	ChannelResistance float64
	// SegmentResistance is the hydraulic resistance of one header
	// segment between adjacent channel taps (Pa.s/m3), same for supply
	// and return headers.
	SegmentResistance float64
	// ZType selects the Z (counter-flow headers) arrangement; false is
	// U-type (parallel-flow headers). Z-type is the classic remedy for
	// maldistribution.
	ZType bool
}

// Validate reports whether the configuration is usable.
func (m ManifoldConfig) Validate() error {
	if m.NChannels < 1 {
		return fmt.Errorf("hydro: need channels, got %d", m.NChannels)
	}
	if m.ChannelResistance <= 0 || m.SegmentResistance < 0 {
		return fmt.Errorf("hydro: nonpositive resistances")
	}
	return nil
}

// ManifoldResult is the solved distribution.
type ManifoldResult struct {
	// Weights are the per-channel flow fractions (sum to 1).
	Weights []float64
	// MaldistributionPct = (max-min)/mean * 100.
	MaldistributionPct float64
	// FirstToLastRatio of channel flows (diagnostic for U vs Z).
	FirstToLastRatio float64
}

// SolveManifold computes the per-channel flow distribution for a unit
// total flow by nodal analysis of the header ladder: supply nodes
// s_0..s_{N-1} and return nodes r_0..r_{N-1}, channel k connecting s_k
// to r_k, supply fed at s_0, return drawn at r_0 (U-type) or r_{N-1}
// (Z-type).
func SolveManifold(m ManifoldConfig) (*ManifoldResult, error) {
	if err := m.Validate(); err != nil {
		return nil, err
	}
	n := m.NChannels
	if n == 1 {
		return &ManifoldResult{Weights: []float64{1}, FirstToLastRatio: 1}, nil
	}
	gc := 1 / m.ChannelResistance
	gs := math.Inf(1)
	if m.SegmentResistance > 0 {
		gs = 1 / m.SegmentResistance
	}
	if math.IsInf(gs, 1) {
		// Ideal headers: even split.
		w := make([]float64, n)
		for k := range w {
			w[k] = 1 / float64(n)
		}
		return &ManifoldResult{Weights: w, MaldistributionPct: 0, FirstToLastRatio: 1}, nil
	}
	// Unknown pressures: supply nodes 0..n-1, return nodes n..2n-1.
	// Reference: return sink node pressure = 0 handled by grounding the
	// draw node with a large conductance; instead we pin the draw node
	// exactly by excluding it from the unknowns.
	drawNode := n // r_0 (U-type)
	if m.ZType {
		drawNode = 2*n - 1 // r_{N-1}
	}
	idx := make([]int, 2*n)
	cnt := 0
	for i := 0; i < 2*n; i++ {
		if i == drawNode {
			idx[i] = -1
			continue
		}
		idx[i] = cnt
		cnt++
	}
	co := num.NewCOO(cnt, cnt)
	b := make([]float64, cnt)
	stamp := func(a, c int, g float64) {
		ia, ic := idx[a], idx[c]
		if ia >= 0 {
			co.Add(ia, ia, g)
			if ic >= 0 {
				co.Add(ia, ic, -g)
			}
		}
		if ic >= 0 {
			co.Add(ic, ic, g)
			if ia >= 0 {
				co.Add(ic, ia, -g)
			}
		}
	}
	for k := 0; k < n; k++ {
		stamp(k, n+k, gc) // channel
		if k < n-1 {
			stamp(k, k+1, gs)     // supply header segment
			stamp(n+k, n+k+1, gs) // return header segment
		}
	}
	// Unit inflow at s_0.
	b[idx[0]] += 1
	a := co.ToCSR()
	x := make([]float64, cnt)
	if _, err := num.CG(a, b, x, num.IterOptions{Tol: 1e-12, MaxIter: 100 * cnt, M: num.NewJacobi(a)}); err != nil {
		return nil, fmt.Errorf("hydro: manifold solve failed: %w", err)
	}
	pAt := func(i int) float64 {
		if idx[i] < 0 {
			return 0
		}
		return x[idx[i]]
	}
	res := &ManifoldResult{Weights: make([]float64, n)}
	sum := 0.0
	minW, maxW := math.Inf(1), math.Inf(-1)
	for k := 0; k < n; k++ {
		w := gc * (pAt(k) - pAt(n+k))
		res.Weights[k] = w
		sum += w
		minW = math.Min(minW, w)
		maxW = math.Max(maxW, w)
	}
	// Normalize (unit inflow should already sum to 1 up to solver tol).
	for k := range res.Weights {
		res.Weights[k] /= sum
	}
	mean := 1.0 / float64(n)
	res.MaldistributionPct = 100 * (maxW/sum - minW/sum) / mean
	res.FirstToLastRatio = res.Weights[0] / res.Weights[n-1]
	return res, nil
}
