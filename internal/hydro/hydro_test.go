package hydro

import (
	"math"
	"testing"

	"bright/internal/cfd"
	"bright/internal/units"
)

var vanadium = cfd.Fluid{
	Density:             1260,
	Viscosity:           2.53e-3,
	ThermalConductivity: 0.67,
	HeatCapacityVol:     4.187e6,
}

var power7Channel = cfd.Channel{Width: 200e-6, Height: 400e-6, Length: 22e-3}

func power7Network() Network {
	return Network{
		Channel:   power7Channel,
		Fluid:     vanadium,
		NChannels: 88,
		ManifoldK: 1.5,
	}
}

func TestTableIIOperatingPoint(t *testing.T) {
	n := power7Network()
	rep, err := n.Evaluate(units.MLPerMinToM3PerS(676))
	if err != nil {
		t.Fatal(err)
	}
	// Paper: mean velocity ~1.4 m/s (their quote; exact division of
	// 676/88 ml/min by the 200x400 um area gives 1.60 m/s).
	if rep.MeanVelocity < 1.3 || rep.MeanVelocity > 1.7 {
		t.Fatalf("mean velocity %g outside paper ballpark", rep.MeanVelocity)
	}
	// Laminar regime required for co-laminar streams.
	if rep.Reynolds > 500 {
		t.Fatalf("Re = %g not comfortably laminar", rep.Reynolds)
	}
	// Pressure gradient: textbook laminar friction for this geometry
	// gives ~0.18 bar/cm; the paper quotes 1.5 bar/cm. See
	// EXPERIMENTS.md for the documented discrepancy. Here we assert our
	// self-consistent physics.
	gradBarPerCm := units.PaToBar(rep.PressureGradient) / 100 // (bar/m) / 100 = bar/cm
	if gradBarPerCm < 0.05 || gradBarPerCm > 0.5 {
		t.Fatalf("pressure gradient %.3f bar/cm outside laminar expectation", gradBarPerCm)
	}
	// Pump power must be positive and far below the chip power (~100 W).
	if rep.PumpPower <= 0 || rep.PumpPower > 20 {
		t.Fatalf("pump power %g W implausible", rep.PumpPower)
	}
	// The flow must be able to absorb the chip heat with a small rise:
	// heat capacity rate = Q * rho*cp ~ 47 W/K.
	hcr := rep.TotalFlowRate * vanadium.HeatCapacityVol
	if hcr < 40 || hcr > 55 {
		t.Fatalf("heat capacity rate %g W/K outside expectation", hcr)
	}
}

func TestPressureDropLinearInFlow(t *testing.T) {
	d1 := ChannelPressureDrop(power7Channel, vanadium, 1e-7)
	d2 := ChannelPressureDrop(power7Channel, vanadium, 2e-7)
	if math.Abs(d2-2*d1) > 1e-9*d2 {
		t.Fatalf("laminar friction must be linear: %g vs 2*%g", d2, d1)
	}
}

func TestMinorLossQuadratic(t *testing.T) {
	l1 := MinorLoss(vanadium, 2, 1)
	l2 := MinorLoss(vanadium, 2, 2)
	if math.Abs(l2-4*l1) > 1e-12*l2 {
		t.Fatalf("minor loss must be quadratic: %g vs 4*%g", l2, l1)
	}
	if MinorLoss(vanadium, 0, 10) != 0 {
		t.Fatal("zero K must give zero loss")
	}
}

func TestEvaluateInvertsFlowRateForPressure(t *testing.T) {
	n := power7Network()
	for _, q := range []float64{units.MLPerMinToM3PerS(48), units.MLPerMinToM3PerS(676)} {
		rep, err := n.Evaluate(q)
		if err != nil {
			t.Fatal(err)
		}
		qBack, err := n.FlowRateForPressure(rep.TotalDrop)
		if err != nil {
			t.Fatal(err)
		}
		if math.Abs(qBack-q)/q > 1e-9 {
			t.Fatalf("round trip: %g -> %g", q, qBack)
		}
	}
}

func TestFlowRateForPressureNoManifold(t *testing.T) {
	n := power7Network()
	n.ManifoldK = 0
	rep, err := n.Evaluate(units.MLPerMinToM3PerS(100))
	if err != nil {
		t.Fatal(err)
	}
	q, err := n.FlowRateForPressure(rep.TotalDrop)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(q-rep.TotalFlowRate)/rep.TotalFlowRate > 1e-12 {
		t.Fatalf("linear inversion broken: %g vs %g", q, rep.TotalFlowRate)
	}
}

func TestPumpPowerScalesWithEfficiency(t *testing.T) {
	n := power7Network()
	n.PumpEfficiency = 1.0
	repFull, err := n.Evaluate(units.MLPerMinToM3PerS(676))
	if err != nil {
		t.Fatal(err)
	}
	n.PumpEfficiency = 0.5
	repHalf, err := n.Evaluate(units.MLPerMinToM3PerS(676))
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(repHalf.PumpPower-2*repFull.PumpPower) > 1e-9*repHalf.PumpPower {
		t.Fatalf("pump power must double at half efficiency: %g vs %g",
			repHalf.PumpPower, repFull.PumpPower)
	}
}

func TestValidation(t *testing.T) {
	n := power7Network()
	n.NChannels = 0
	if _, err := n.Evaluate(1e-6); err == nil {
		t.Fatal("zero channels must error")
	}
	n = power7Network()
	if _, err := n.Evaluate(-1); err == nil {
		t.Fatal("negative flow must error")
	}
	n.ManifoldK = -1
	if err := n.Validate(); err == nil {
		t.Fatal("negative K must error")
	}
	n = power7Network()
	n.PumpEfficiency = 2
	if err := n.Validate(); err == nil {
		t.Fatal("efficiency > 1 must error")
	}
	if _, err := power7Network().FlowRateForPressure(0); err == nil {
		t.Fatal("zero pressure must error")
	}
}

func TestMoreChannelsLowerDrop(t *testing.T) {
	q := units.MLPerMinToM3PerS(676)
	n44, n176 := power7Network(), power7Network()
	n44.NChannels = 44
	n176.NChannels = 176
	r44, err := n44.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	r176, err := n176.Evaluate(q)
	if err != nil {
		t.Fatal(err)
	}
	if r176.TotalDrop >= r44.TotalDrop {
		t.Fatalf("more parallel channels must reduce drop: %g vs %g",
			r176.TotalDrop, r44.TotalDrop)
	}
}
