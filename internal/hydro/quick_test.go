package hydro

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"

	"bright/internal/units"
)

func quickConfig(seed int64, max int) *quick.Config {
	return &quick.Config{MaxCount: max, Rand: rand.New(rand.NewSource(seed))}
}

// TestQuickEvaluateInverts: for random networks and flows,
// FlowRateForPressure inverts Evaluate.
func TestQuickEvaluateInverts(t *testing.T) {
	fn := func(flowR, kR, nR uint8) bool {
		net := power7Network()
		net.NChannels = 1 + int(nR)%200
		net.ManifoldK = float64(kR) / 32 // 0..8
		q := units.MLPerMinToM3PerS(1 + float64(flowR)*5)
		rep, err := net.Evaluate(q)
		if err != nil {
			return false
		}
		back, err := net.FlowRateForPressure(rep.TotalDrop)
		if err != nil {
			return false
		}
		return math.Abs(back-q) <= 1e-7*q
	}
	if err := quick.Check(fn, quickConfig(41, 200)); err != nil {
		t.Error(err)
	}
}

// TestQuickPumpPowerPositiveAndMonotone: pumping power grows with flow.
func TestQuickPumpPowerPositiveAndMonotone(t *testing.T) {
	fn := func(flowR, dR uint8) bool {
		net := power7Network()
		q1 := units.MLPerMinToM3PerS(1 + float64(flowR))
		q2 := q1 + units.MLPerMinToM3PerS(1+float64(dR))
		r1, err1 := net.Evaluate(q1)
		r2, err2 := net.Evaluate(q2)
		if err1 != nil || err2 != nil {
			return false
		}
		return r1.PumpPower > 0 && r2.PumpPower > r1.PumpPower
	}
	if err := quick.Check(fn, quickConfig(42, 200)); err != nil {
		t.Error(err)
	}
}

// TestQuickManifoldWeightsNormalized for random ladder parameters.
func TestQuickManifoldWeightsNormalized(t *testing.T) {
	fn := func(nR, segR uint8, z bool) bool {
		cfg := ManifoldConfig{
			NChannels:         1 + int(nR)%120,
			ChannelResistance: 1e9,
			SegmentResistance: float64(segR) * 1e3, // 0 .. 2.55e5
			ZType:             z,
		}
		res, err := SolveManifold(cfg)
		if err != nil {
			return false
		}
		sum := 0.0
		for _, w := range res.Weights {
			if w <= 0 || math.IsNaN(w) {
				return false
			}
			sum += w
		}
		return math.Abs(sum-1) < 1e-8
	}
	if err := quick.Check(fn, quickConfig(43, 120)); err != nil {
		t.Error(err)
	}
}
