// Package hydro computes hydraulic quantities for the microfluidic
// network: Darcy-Weisbach pressure drops in the laminar regime, manifold
// minor losses and the pumping power needed to drive the electrolytes —
// the quantities behind the paper's "1.5 bar/cm, 4.4 W pumping power"
// claims in Section III-B.
package hydro

import (
	"fmt"
	"math"

	"bright/internal/cfd"
)

// PumpEfficiencyDefault is the pump efficiency assumed by the paper
// (eta_p = 50%, citing Sabry et al. DATE 2011).
const PumpEfficiencyDefault = 0.5

// ChannelPressureDrop returns the fully developed laminar pressure drop
// (Pa) across a channel carrying flowRate (m3/s), via the Darcy-Weisbach
// relation with f = fRe/Re:
//
//	dp = fRe * mu * L * v / (2 * Dh^2)
func ChannelPressureDrop(c cfd.Channel, f cfd.Fluid, flowRate float64) float64 {
	v := cfd.MeanVelocity(c, flowRate)
	return cfd.PressureGradient(c, f, v) * c.Length
}

// MinorLoss returns the pressure loss (Pa) of a fitting with loss
// coefficient K at mean velocity v: dp = K * rho * v^2 / 2.
func MinorLoss(f cfd.Fluid, k, v float64) float64 {
	return k * f.Density * v * v / 2
}

// Network describes the hydraulic path of a flow-cell array: identical
// parallel channels fed by inlet/outlet manifolds.
type Network struct {
	Channel   cfd.Channel
	Fluid     cfd.Fluid
	NChannels int
	// ManifoldK is the total minor-loss coefficient (inlet contraction +
	// bends + outlet expansion) referenced to the channel mean velocity.
	// Typical microfluidic headers: K in [1, 3].
	ManifoldK float64
	// PumpEfficiency in (0, 1]; PumpEfficiencyDefault if zero.
	PumpEfficiency float64
}

// Validate reports whether the network description is usable.
func (n Network) Validate() error {
	if err := n.Channel.Validate(); err != nil {
		return err
	}
	if err := n.Fluid.Validate(); err != nil {
		return err
	}
	if n.NChannels <= 0 {
		return fmt.Errorf("hydro: need at least one channel, got %d", n.NChannels)
	}
	if n.ManifoldK < 0 {
		return fmt.Errorf("hydro: negative manifold K %g", n.ManifoldK)
	}
	if n.PumpEfficiency < 0 || n.PumpEfficiency > 1 {
		return fmt.Errorf("hydro: pump efficiency %g out of [0,1]", n.PumpEfficiency)
	}
	return nil
}

// Report carries the derived hydraulic operating point.
type Report struct {
	TotalFlowRate      float64 // m3/s
	PerChannelFlowRate float64 // m3/s
	MeanVelocity       float64 // m/s
	Reynolds           float64
	ChannelDrop        float64 // Pa, friction only
	ManifoldDrop       float64 // Pa, minor losses
	TotalDrop          float64 // Pa
	PressureGradient   float64 // Pa/m along the channel
	PumpPower          float64 // W, dp*V/eta
}

// Evaluate computes the operating point for the given total volumetric
// flow rate (m3/s) split evenly across the parallel channels.
func (n Network) Evaluate(totalFlowRate float64) (Report, error) {
	if err := n.Validate(); err != nil {
		return Report{}, err
	}
	if totalFlowRate <= 0 {
		return Report{}, fmt.Errorf("hydro: nonpositive flow rate %g", totalFlowRate)
	}
	eta := n.PumpEfficiency
	if eta == 0 {
		eta = PumpEfficiencyDefault
	}
	per := totalFlowRate / float64(n.NChannels)
	v := cfd.MeanVelocity(n.Channel, per)
	re := cfd.Reynolds(n.Channel, n.Fluid, v)
	chDrop := ChannelPressureDrop(n.Channel, n.Fluid, per)
	manDrop := MinorLoss(n.Fluid, n.ManifoldK, v)
	total := chDrop + manDrop
	return Report{
		TotalFlowRate:      totalFlowRate,
		PerChannelFlowRate: per,
		MeanVelocity:       v,
		Reynolds:           re,
		ChannelDrop:        chDrop,
		ManifoldDrop:       manDrop,
		TotalDrop:          total,
		PressureGradient:   chDrop / n.Channel.Length,
		PumpPower:          total * totalFlowRate / eta,
	}, nil
}

// FlowRateForPressure inverts Evaluate: the total flow rate that produces
// the given total pressure drop (Pa). In the laminar regime the friction
// term is linear in flow and the minor losses quadratic, so the inverse
// solves a quadratic equation; only the positive root is physical.
func (n Network) FlowRateForPressure(dp float64) (float64, error) {
	if err := n.Validate(); err != nil {
		return 0, err
	}
	if dp <= 0 {
		return 0, fmt.Errorf("hydro: nonpositive pressure %g", dp)
	}
	// dp = a*Q + b*Q^2 with per-channel Q_c = Q/N:
	// friction: fRe*mu*L/(2 Dh^2 A) * Q_c
	// minor:    K*rho/(2 A^2) * Q_c^2
	area := n.Channel.Area()
	dh := n.Channel.HydraulicDiameter()
	nf := float64(n.NChannels)
	a := cfd.FRe(n.Channel.AspectRatio()) * n.Fluid.Viscosity * n.Channel.Length / (2 * dh * dh * area) / nf
	b := n.ManifoldK * n.Fluid.Density / (2 * area * area) / (nf * nf)
	if b == 0 {
		return dp / a, nil
	}
	// Positive root of b Q^2 + a Q - dp = 0.
	disc := a*a + 4*b*dp
	q := (-a + math.Sqrt(disc)) / (2 * b)
	return q, nil
}
