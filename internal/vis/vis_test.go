package vis

import (
	"strings"
	"testing"

	"bright/internal/mesh"
)

func gradientField(nx, ny int) *mesh.Field2D {
	g := mesh.NewUniformGrid2D(1, 1, nx, ny)
	f := mesh.NewField2D(g)
	for j := 0; j < ny; j++ {
		for i := 0; i < nx; i++ {
			f.Set(i, j, float64(i+j))
		}
	}
	return f
}

func TestASCIIHeatmapBasics(t *testing.T) {
	f := gradientField(40, 20)
	out := ASCIIHeatmap(f, HeatmapOptions{Title: "map", Unit: "C"})
	if !strings.HasPrefix(out, "map\n") {
		t.Fatal("missing title")
	}
	if !strings.Contains(out, "scale:") {
		t.Fatal("missing scale legend")
	}
	// Coldest and hottest glyphs both appear on a full gradient.
	if !strings.Contains(out, " ") || !strings.Contains(out, "@") {
		t.Fatalf("gradient should span the ramp:\n%s", out)
	}
	lines := strings.Split(strings.TrimSpace(out), "\n")
	// title + >=1 row + scale line.
	if len(lines) < 3 {
		t.Fatalf("too few lines: %d", len(lines))
	}
}

func TestASCIIHeatmapDownsample(t *testing.T) {
	f := gradientField(400, 100)
	out := ASCIIHeatmap(f, HeatmapOptions{MaxCols: 50})
	for _, line := range strings.Split(out, "\n") {
		if strings.Contains(line, "scale:") || line == "" {
			continue
		}
		if len(line) > 100 {
			t.Fatalf("row too wide: %d chars", len(line))
		}
	}
}

func TestASCIIHeatmapFlipY(t *testing.T) {
	// With values growing along +y, FlipY puts the bright row first.
	f := gradientField(10, 30)
	flipped := ASCIIHeatmap(f, HeatmapOptions{FlipY: true})
	normal := ASCIIHeatmap(f, HeatmapOptions{})
	fl := strings.Split(flipped, "\n")
	nl := strings.Split(normal, "\n")
	if fl[0] != nl[len(nl)-3] { // last map row before the scale line
		t.Fatalf("FlipY did not reverse rows:\n%q\n%q", fl[0], nl[len(nl)-3])
	}
}

func TestASCIIHeatmapConstantField(t *testing.T) {
	g := mesh.NewUniformGrid2D(1, 1, 5, 5)
	f := mesh.NewField2D(g)
	f.Fill(3)
	out := ASCIIHeatmap(f, HeatmapOptions{})
	if out == "" || !strings.Contains(out, "scale:") {
		t.Fatal("constant field must render without dividing by zero")
	}
}

func TestWriteCSVMatrix(t *testing.T) {
	f := gradientField(3, 2)
	var b strings.Builder
	if err := WriteCSVMatrix(&b, f, 1e3); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 3 {
		t.Fatalf("want header+2 rows, got %d", len(lines))
	}
	if !strings.HasPrefix(lines[0], "y\\x,") {
		t.Fatalf("bad header: %q", lines[0])
	}
	if !strings.Contains(lines[1], ",") {
		t.Fatal("row missing values")
	}
}

func TestWriteCSVSeries(t *testing.T) {
	var b strings.Builder
	err := WriteCSVSeries(&b, []string{"i", "v"}, []float64{0, 1, 2}, []float64{1.5, 1.2, 0.9})
	if err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(b.String()), "\n")
	if len(lines) != 4 || lines[0] != "i,v" {
		t.Fatalf("bad output: %q", b.String())
	}
	// Errors.
	if err := WriteCSVSeries(&b, []string{"a"}, []float64{1}, []float64{2}); err == nil {
		t.Fatal("header/column mismatch accepted")
	}
	if err := WriteCSVSeries(&b, []string{"a", "b"}, []float64{1}, []float64{2, 3}); err == nil {
		t.Fatal("ragged columns accepted")
	}
	if err := WriteCSVSeries(&b, []string{}); err == nil {
		t.Fatal("empty columns accepted")
	}
}
