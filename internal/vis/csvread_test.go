package vis

import (
	"math"
	"strings"
	"testing"

	"bright/internal/mesh"
)

func TestCSVSeriesRoundTrip(t *testing.T) {
	var b strings.Builder
	xs := []float64{0, 1.5, 3.25}
	ys := []float64{10, -2.5, 0.125}
	if err := WriteCSVSeries(&b, []string{"x", "y"}, xs, ys); err != nil {
		t.Fatal(err)
	}
	headers, cols, err := ReadCSVSeries(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(headers) != 2 || headers[0] != "x" || headers[1] != "y" {
		t.Fatalf("headers %v", headers)
	}
	for k := range xs {
		if math.Abs(cols[0][k]-xs[k]) > 1e-12 || math.Abs(cols[1][k]-ys[k]) > 1e-12 {
			t.Fatalf("row %d: %v", k, cols)
		}
	}
}

func TestCSVSeriesErrors(t *testing.T) {
	if _, _, err := ReadCSVSeries(strings.NewReader("")); err == nil {
		t.Fatal("empty input accepted")
	}
	if _, _, err := ReadCSVSeries(strings.NewReader("a,b\n1\n")); err == nil {
		t.Fatal("ragged row accepted")
	}
	if _, _, err := ReadCSVSeries(strings.NewReader("a,b\n1,zebra\n")); err == nil {
		t.Fatal("non-numeric accepted")
	}
	// Blank lines are tolerated.
	if _, cols, err := ReadCSVSeries(strings.NewReader("a\n\n1\n\n2\n")); err != nil || len(cols[0]) != 2 {
		t.Fatalf("blank-line handling: %v %v", cols, err)
	}
}

func TestCSVMatrixRoundTrip(t *testing.T) {
	g := mesh.NewUniformGrid2D(2, 1, 4, 3)
	f := mesh.NewField2D(g)
	for j := 0; j < 3; j++ {
		for i := 0; i < 4; i++ {
			f.Set(i, j, float64(10*i+j))
		}
	}
	var b strings.Builder
	if err := WriteCSVMatrix(&b, f, 1e3); err != nil {
		t.Fatal(err)
	}
	xs, ys, vals, err := ReadCSVMatrix(strings.NewReader(b.String()))
	if err != nil {
		t.Fatal(err)
	}
	if len(xs) != 4 || len(ys) != 3 {
		t.Fatalf("shape %dx%d", len(xs), len(ys))
	}
	// Coordinates in mm.
	if math.Abs(xs[0]-g.X.Centers[0]*1e3) > 1e-9 {
		t.Fatalf("x scale: %g", xs[0])
	}
	for j := range ys {
		for i := range xs {
			if math.Abs(vals[j][i]-f.At(i, j)) > 1e-9 {
				t.Fatalf("value (%d,%d): %g vs %g", i, j, vals[j][i], f.At(i, j))
			}
		}
	}
}

func TestCSVMatrixErrors(t *testing.T) {
	if _, _, _, err := ReadCSVMatrix(strings.NewReader("")); err == nil {
		t.Fatal("empty accepted")
	}
	if _, _, _, err := ReadCSVMatrix(strings.NewReader("nope,1\n0,2\n")); err == nil {
		t.Fatal("bad header accepted")
	}
	if _, _, _, err := ReadCSVMatrix(strings.NewReader("y\\x,1,2\n0,3\n")); err == nil {
		t.Fatal("ragged row accepted")
	}
	if _, _, _, err := ReadCSVMatrix(strings.NewReader("y\\x,1\nzebra,3\n")); err == nil {
		t.Fatal("non-numeric y accepted")
	}
}
