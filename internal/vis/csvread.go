package vis

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// ReadCSVSeries parses column-oriented series data written by
// WriteCSVSeries: a header row followed by numeric rows. It returns the
// headers and one slice per column, enabling round-trip tests and
// post-processing of the repro harness's outputs.
func ReadCSVSeries(r io.Reader) (headers []string, columns [][]float64, err error) {
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if headers == nil {
			headers = fields
			columns = make([][]float64, len(headers))
			continue
		}
		if len(fields) != len(headers) {
			return nil, nil, fmt.Errorf("vis: line %d has %d fields, want %d", line, len(fields), len(headers))
		}
		for c, f := range fields {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, nil, fmt.Errorf("vis: line %d column %d: %w", line, c, err)
			}
			columns[c] = append(columns[c], v)
		}
	}
	if err := sc.Err(); err != nil {
		return nil, nil, err
	}
	if headers == nil {
		return nil, nil, fmt.Errorf("vis: empty CSV")
	}
	return headers, columns, nil
}

// ReadCSVMatrix parses a matrix written by WriteCSVMatrix: an "y\x"
// header carrying x coordinates, then one row per y with the leading y
// coordinate. It returns the coordinate vectors and the values indexed
// [row][col].
func ReadCSVMatrix(r io.Reader) (xs, ys []float64, values [][]float64, err error) {
	sc := bufio.NewScanner(r)
	first := true
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" {
			continue
		}
		fields := strings.Split(text, ",")
		if first {
			first = false
			if len(fields) < 2 || !strings.Contains(fields[0], `y\x`) {
				return nil, nil, nil, fmt.Errorf("vis: line %d: not a matrix header", line)
			}
			for _, f := range fields[1:] {
				v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
				if err != nil {
					return nil, nil, nil, fmt.Errorf("vis: header x: %w", err)
				}
				xs = append(xs, v)
			}
			continue
		}
		if len(fields) != len(xs)+1 {
			return nil, nil, nil, fmt.Errorf("vis: line %d has %d fields, want %d", line, len(fields), len(xs)+1)
		}
		y, err := strconv.ParseFloat(strings.TrimSpace(fields[0]), 64)
		if err != nil {
			return nil, nil, nil, fmt.Errorf("vis: line %d y: %w", line, err)
		}
		ys = append(ys, y)
		row := make([]float64, len(xs))
		for c, f := range fields[1:] {
			v, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
			if err != nil {
				return nil, nil, nil, fmt.Errorf("vis: line %d col %d: %w", line, c, err)
			}
			row[c] = v
		}
		values = append(values, row)
	}
	if err := sc.Err(); err != nil {
		return nil, nil, nil, err
	}
	if xs == nil || ys == nil {
		return nil, nil, nil, fmt.Errorf("vis: empty matrix CSV")
	}
	return xs, ys, values, nil
}
