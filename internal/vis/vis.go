// Package vis renders simulation fields for humans and files: ASCII
// heatmaps for terminal output (the Fig. 8 voltage map and Fig. 9
// thermal map) and CSV writers for the benchmark harness so every figure
// can be re-plotted externally.
package vis

import (
	"fmt"
	"io"
	"strings"

	"bright/internal/mesh"
)

// ramp is the ASCII intensity ramp, dark to bright.
const ramp = " .:-=+*#%@"

// HeatmapOptions configures ASCII rendering.
type HeatmapOptions struct {
	// MaxCols bounds the rendered width in characters (default 88).
	MaxCols int
	// Title is printed above the map when non-empty.
	Title string
	// Unit labels the scale line (e.g. "C", "V").
	Unit string
	// FlipY renders row 0 at the bottom (natural die coordinates).
	FlipY bool
	// Lo, Hi override the color scale; when both are zero the field
	// min/max is used.
	Lo, Hi float64
}

// ASCIIHeatmap renders a Field2D as an ASCII intensity map with a scale
// legend. Cells are downsampled by averaging when the field is wider
// than MaxCols.
func ASCIIHeatmap(f *mesh.Field2D, opt HeatmapOptions) string {
	if opt.MaxCols <= 0 {
		opt.MaxCols = 88
	}
	nx, ny := f.Grid.NX(), f.Grid.NY()
	lo, hi := opt.Lo, opt.Hi
	if lo == 0 && hi == 0 {
		lo, hi = f.MinMax()
	}
	span := hi - lo
	if span <= 0 {
		span = 1
	}
	// Downsample factors.
	fx := (nx + opt.MaxCols - 1) / opt.MaxCols
	if fx < 1 {
		fx = 1
	}
	// Terminal cells are ~2x taller than wide; compensate.
	fy := 2 * fx
	var b strings.Builder
	if opt.Title != "" {
		fmt.Fprintf(&b, "%s\n", opt.Title)
	}
	rows := make([]string, 0, ny/fy+1)
	for j0 := 0; j0 < ny; j0 += fy {
		var line strings.Builder
		for i0 := 0; i0 < nx; i0 += fx {
			sum, n := 0.0, 0
			for j := j0; j < j0+fy && j < ny; j++ {
				for i := i0; i < i0+fx && i < nx; i++ {
					sum += f.At(i, j)
					n++
				}
			}
			v := (sum/float64(n) - lo) / span
			if v < 0 {
				v = 0
			}
			if v > 1 {
				v = 1
			}
			idx := int(v * float64(len(ramp)-1))
			line.WriteByte(ramp[idx])
		}
		rows = append(rows, line.String())
	}
	if opt.FlipY {
		for k := len(rows) - 1; k >= 0; k-- {
			b.WriteString(rows[k])
			b.WriteByte('\n')
		}
	} else {
		for _, r := range rows {
			b.WriteString(r)
			b.WriteByte('\n')
		}
	}
	fmt.Fprintf(&b, "scale: '%c' = %.4g %s ... '%c' = %.4g %s\n",
		ramp[0], lo, opt.Unit, ramp[len(ramp)-1], hi, opt.Unit)
	return b.String()
}

// WriteCSVMatrix writes a Field2D as CSV with x coordinates in the
// header row and y coordinates in the first column (both in the given
// unit scale factor, e.g. 1e3 for mm).
func WriteCSVMatrix(w io.Writer, f *mesh.Field2D, coordScale float64) error {
	if coordScale == 0 {
		coordScale = 1
	}
	g := f.Grid
	cols := make([]string, 0, g.NX()+1)
	cols = append(cols, "y\\x")
	for i := 0; i < g.NX(); i++ {
		cols = append(cols, fmt.Sprintf("%.6g", g.X.Centers[i]*coordScale))
	}
	if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
		return err
	}
	for j := 0; j < g.NY(); j++ {
		cols = cols[:0]
		cols = append(cols, fmt.Sprintf("%.6g", g.Y.Centers[j]*coordScale))
		for i := 0; i < g.NX(); i++ {
			cols = append(cols, fmt.Sprintf("%.6g", f.At(i, j)))
		}
		if _, err := fmt.Fprintln(w, strings.Join(cols, ",")); err != nil {
			return err
		}
	}
	return nil
}

// WriteCSVSeries writes column-oriented series data with a header.
// All columns must have equal length.
func WriteCSVSeries(w io.Writer, headers []string, columns ...[]float64) error {
	if len(headers) != len(columns) {
		return fmt.Errorf("vis: %d headers for %d columns", len(headers), len(columns))
	}
	if len(columns) == 0 {
		return fmt.Errorf("vis: no columns")
	}
	n := len(columns[0])
	for k, c := range columns {
		if len(c) != n {
			return fmt.Errorf("vis: column %d has %d rows, want %d", k, len(c), n)
		}
	}
	if _, err := fmt.Fprintln(w, strings.Join(headers, ",")); err != nil {
		return err
	}
	row := make([]string, len(columns))
	for r := 0; r < n; r++ {
		for c := range columns {
			row[c] = fmt.Sprintf("%.8g", columns[c][r])
		}
		if _, err := fmt.Fprintln(w, strings.Join(row, ",")); err != nil {
			return err
		}
	}
	return nil
}
