package pdn

import (
	"math"
	"testing"

	"bright/internal/mesh"
	"bright/internal/obs"
)

// batchFixture builds the Fig. 8 problem plus a chain of (load, supply)
// points the way a sweep chain produces them: the matrix is shared and
// only the right-hand side varies point to point.
func batchFixture(t *testing.T, supplies []float64) (*Problem, *Session, []*mesh.Field2D) {
	t.Helper()
	p, _, err := Power7Problem()
	if err != nil {
		t.Fatal(err)
	}
	s, err := NewSession(p)
	if err != nil {
		t.Fatal(err)
	}
	loads := make([]*mesh.Field2D, len(supplies))
	for i, sv := range supplies {
		loads[i] = CacheLoad(p.Floorplan, s.g, sv)
	}
	return p, s, loads
}

// TestSolveBatchMatchesSolve: the batched path must reproduce the
// sequential per-point solutions on the Fig. 8 problem — same matrix,
// same tolerance, so the voltage fields agree to solver accuracy.
func TestSolveBatchMatchesSolve(t *testing.T) {
	supplies := []float64{0.96, 0.98, 1.0, 1.02, 1.05}
	p, seqSes, loads := batchFixture(t, supplies)

	seq := make([]*Solution, len(supplies))
	for i := range supplies {
		sol, err := seqSes.Solve(loads[i], supplies[i])
		if err != nil {
			t.Fatal(err)
		}
		seq[i] = sol
	}

	batSes, err := NewSession(p)
	if err != nil {
		t.Fatal(err)
	}
	bat, err := batSes.SolveBatch(loads, supplies)
	if err != nil {
		t.Fatal(err)
	}
	if len(bat) != len(seq) {
		t.Fatalf("batch returned %d solutions, want %d", len(bat), len(seq))
	}
	for i := range seq {
		worst := 0.0
		for c := range seq[i].V.Data {
			if d := math.Abs(seq[i].V.Data[c] - bat[i].V.Data[c]); d > worst {
				worst = d
			}
		}
		// Both solves hit Tol=1e-11 relative residual on a ~1 V field;
		// the solutions agree far tighter than any physical quantity.
		if worst > 1e-8 {
			t.Fatalf("point %d: batched field differs from sequential by %g V", i, worst)
		}
		approx(t, bat[i].MinVCache, seq[i].MinVCache, 1e-9, "MinVCache")
		approx(t, bat[i].TotalLoad, seq[i].TotalLoad, 1e-12, "TotalLoad")
		approx(t, bat[i].TotalSourceCurrent(), seq[i].TotalSourceCurrent(), 1e-6, "KCL")
	}
}

// TestSolveBatchTraversalSavings is the sweep-chain acceptance test:
// batching a chain's PDN solves must traverse fewer SpMV rows than
// solving the same chain sequentially. Both sides run cold sessions
// (fresh warm start), so the comparison is one chain against itself.
func TestSolveBatchTraversalSavings(t *testing.T) {
	rows := obs.Default.Counter("bright_spmv_rows_total",
		"CSR rows traversed by SpMV kernels (a k-RHS block traversal counts its rows once).")
	supplies := []float64{0.95, 0.97, 0.99, 1.01, 1.03, 1.05}
	p, seqSes, loads := batchFixture(t, supplies)

	r0 := rows.Value()
	for i := range supplies {
		if _, err := seqSes.Solve(loads[i], supplies[i]); err != nil {
			t.Fatal(err)
		}
	}
	seqRows := rows.Value() - r0

	batSes, err := NewSession(p)
	if err != nil {
		t.Fatal(err)
	}
	r0 = rows.Value()
	if _, err := batSes.SolveBatch(loads, supplies); err != nil {
		t.Fatal(err)
	}
	batRows := rows.Value() - r0
	if batRows >= seqRows {
		t.Fatalf("batched chain traversed %d rows vs %d sequential, want fewer", batRows, seqRows)
	}
	t.Logf("chain of %d: seq=%d rows, batch=%d rows (%.2fx fewer)",
		len(supplies), seqRows, batRows, float64(seqRows)/float64(batRows))
}

// TestSolveBatchChunksAndErrors: a batch wider than batchWidth splits
// into consecutive blocks, a width-1 tail runs the scalar path, and a
// bad point is rejected with its index.
func TestSolveBatchChunksAndErrors(t *testing.T) {
	supplies := make([]float64, batchWidth+1) // 8 + 1 tail
	for i := range supplies {
		supplies[i] = 0.95 + 0.01*float64(i)
	}
	_, ses, loads := batchFixture(t, supplies)
	sols, err := ses.SolveBatch(loads, supplies)
	if err != nil {
		t.Fatal(err)
	}
	if len(sols) != len(supplies) {
		t.Fatalf("got %d solutions, want %d", len(sols), len(supplies))
	}
	for i := 1; i < len(sols); i++ {
		if sols[i].MinVCache <= sols[i-1].MinVCache {
			t.Fatalf("min cache voltage not increasing with supply: %v vs %v at %d",
				sols[i].MinVCache, sols[i-1].MinVCache, i)
		}
	}

	if _, err := ses.SolveBatch(loads[:2], supplies[:1]); err == nil {
		t.Fatal("mismatched lengths accepted")
	}
	bad := append([]float64{}, supplies...)
	bad[3] = -1
	if _, err := ses.SolveBatch(loads, bad); err == nil {
		t.Fatal("negative supply accepted")
	}
	if out, err := ses.SolveBatch(nil, nil); err != nil || out != nil {
		t.Fatalf("empty batch: %v, %v", out, err)
	}
}
