package pdn

import (
	"math"
	"testing"

	"bright/internal/floorplan"
	"bright/internal/mesh"
)

func approx(t *testing.T, got, want, rel float64, msg string) {
	t.Helper()
	if math.Abs(got-want) > rel*math.Abs(want) {
		t.Errorf("%s: got %g want %g (rel tol %g)", msg, got, want, rel)
	}
}

func solvePower7(t *testing.T) (*Problem, *Solution) {
	t.Helper()
	p, _, err := Power7Problem()
	if err != nil {
		t.Fatal(err)
	}
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, sol
}

func TestPower7Fig8VoltageBand(t *testing.T) {
	// Fig. 8: the voltage distribution across the cache-supplying grid
	// spans roughly 0.96-0.995 V at a 1 V supply.
	_, sol := solvePower7(t)
	if sol.MinVCache < 0.93 || sol.MinVCache > 0.99 {
		t.Fatalf("min cache voltage %.4f V outside the Fig. 8 band", sol.MinVCache)
	}
	if sol.MaxV > 1.0+1e-9 {
		t.Fatalf("node above supply: %.4f V", sol.MaxV)
	}
	if sol.MinV < 0.9 {
		t.Fatalf("grid droop %.4f V implausibly deep", sol.MinV)
	}
	// Unloaded (non-cache) regions float near the supply.
	if sol.MaxV < 0.99 {
		t.Fatalf("unloaded regions should sit near 1 V, max %.4f", sol.MaxV)
	}
}

func TestKirchhoffBalance(t *testing.T) {
	// Total via-site injection equals total sink current.
	_, sol := solvePower7(t)
	approx(t, sol.TotalSourceCurrent(), sol.TotalLoad, 1e-6, "KCL")
	if sol.TotalLoad < 1.5 || sol.TotalLoad > 3.5 {
		t.Fatalf("cache load %.2f A outside floorplan expectation", sol.TotalLoad)
	}
	for k, i := range sol.SiteCurrents {
		if i <= 0 {
			t.Fatalf("site %d injects %g A (must be positive)", k, i)
		}
	}
}

func TestWorstDropInsideCache(t *testing.T) {
	p, sol := solvePower7(t)
	u := p.Floorplan.UnitAt(sol.WorstX, sol.WorstY)
	if u == nil || !u.Kind.IsCache() {
		t.Fatalf("worst cache voltage located outside cache: %v", u)
	}
	if sol.MinVCache > sol.MaxV {
		t.Fatal("min above max")
	}
}

func TestMoreSitesLessDroop(t *testing.T) {
	// Ablation direction: a single central via site must droop more
	// than the distributed cache placement.
	p, sol := solvePower7(t)
	single := *p
	single.Sites = SingleViaSite(p.Floorplan, Power7TSVResistance)
	solSingle, err := Solve(&single)
	if err != nil {
		t.Fatal(err)
	}
	if solSingle.MinVCache >= sol.MinVCache {
		t.Fatalf("single site droop %.4f should exceed distributed %.4f",
			solSingle.MinVCache, sol.MinVCache)
	}
}

func TestLowerSheetResistanceLessDroop(t *testing.T) {
	p, sol := solvePower7(t)
	better := *p
	better.SheetResistance = Power7SheetResistance / 4
	solBetter, err := Solve(&better)
	if err != nil {
		t.Fatal(err)
	}
	if solBetter.MinVCache <= sol.MinVCache {
		t.Fatalf("lower Rs must reduce droop: %.4f vs %.4f",
			solBetter.MinVCache, sol.MinVCache)
	}
}

func TestDropScalesWithLoad(t *testing.T) {
	// Linear network: doubling the load doubles every IR drop.
	p, sol := solvePower7(t)
	heavy := *p
	heavyLoad := mesh.NewField2D(p.LoadDensity.Grid)
	copy(heavyLoad.Data, p.LoadDensity.Data)
	for k := range heavyLoad.Data {
		heavyLoad.Data[k] *= 2
	}
	heavy.LoadDensity = heavyLoad
	solHeavy, err := Solve(&heavy)
	if err != nil {
		t.Fatal(err)
	}
	drop1 := p.Supply - sol.MinVCache
	drop2 := p.Supply - solHeavy.MinVCache
	approx(t, drop2, 2*drop1, 1e-3, "linearity of IR drop")
}

func TestNoLoadNoDroop(t *testing.T) {
	p, _, err := Power7Problem()
	if err != nil {
		t.Fatal(err)
	}
	zero := mesh.NewField2D(p.LoadDensity.Grid)
	p.LoadDensity = zero
	sol, err := Solve(p)
	if err != nil {
		t.Fatal(err)
	}
	approx(t, sol.MinV, p.Supply, 1e-9, "unloaded grid floats at supply")
	approx(t, sol.MaxV, p.Supply, 1e-9, "unloaded grid floats at supply")
}

func TestVRM(t *testing.T) {
	v := DefaultVRM()
	if err := v.Validate(); err != nil {
		t.Fatal(err)
	}
	// 6 W out at 86% -> ~6.98 W in.
	approx(t, v.InputPower(6.0), 6.0/0.86, 1e-12, "input power")
	bad := v
	bad.Efficiency = 1.2
	if err := bad.Validate(); err == nil {
		t.Fatal("efficiency > 1 accepted")
	}
	bad = v
	bad.Vout = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero Vout accepted")
	}
	bad = v
	bad.OutputResistance = -1
	if err := bad.Validate(); err == nil {
		t.Fatal("negative Rout accepted")
	}
}

func TestProblemValidation(t *testing.T) {
	p, _, err := Power7Problem()
	if err != nil {
		t.Fatal(err)
	}
	cases := []func(*Problem){
		func(q *Problem) { q.Floorplan = nil },
		func(q *Problem) { q.SheetResistance = 0 },
		func(q *Problem) { q.Supply = -1 },
		func(q *Problem) { q.Sites = nil },
		func(q *Problem) { q.Sites = []ViaSite{{X: -1, Y: 0, Resistance: 1}} },
		func(q *Problem) { q.Sites = []ViaSite{{X: 0, Y: 0, Resistance: 0}} },
		func(q *Problem) { q.LoadDensity = nil },
	}
	for k, mutate := range cases {
		q := *p
		mutate(&q)
		if _, err := Solve(&q); err == nil {
			t.Errorf("case %d: expected error", k)
		}
	}
	// Mismatched load grid.
	q := *p
	q.LoadDensity = mesh.NewField2D(mesh.NewUniformGrid2D(1, 1, 3, 3))
	if _, err := Solve(&q); err == nil {
		t.Fatal("mismatched load grid accepted")
	}
}

func TestCacheViaSitePlacement(t *testing.T) {
	f := floorplan.Power7()
	sites := CacheViaSites(f, 1e-3)
	// 8 L2 sites + 2 L3 banks x 3 = 14.
	if len(sites) != 14 {
		t.Fatalf("expected 14 sites, got %d", len(sites))
	}
	for k, s := range sites {
		u := f.UnitAt(s.X, s.Y)
		if u == nil || !u.Kind.IsCache() {
			t.Fatalf("site %d at (%g, %g) not over cache (%v)", k, s.X, s.Y, u)
		}
	}
}
