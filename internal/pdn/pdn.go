// Package pdn models the on-chip power delivery network of the case
// study: a resistive power-grid mesh over the die, current-sink loads
// from the floorplan power map, and microfluidic-fed voltage-regulator
// (VRM) sources injecting through TSV via sites above the cache regions
// (paper Figs. 5, 6 and 8). The DC operating point is a modified nodal
// analysis solved with preconditioned conjugate gradients.
package pdn

import (
	"fmt"
	"math"

	"bright/internal/floorplan"
	"bright/internal/mesh"
	"bright/internal/num"
)

// VRM is a voltage regulator module converting the flow-cell potential
// to the chip supply level (the paper cites switched-capacitor
// converters at 86% efficiency, reference [22]).
type VRM struct {
	// Vout is the regulated output voltage (V).
	Vout float64
	// Efficiency in (0, 1].
	Efficiency float64
	// OutputResistance is the converter output impedance (ohm), lumped
	// into each via site's source resistance.
	OutputResistance float64
}

// Validate reports whether the VRM parameters are physical.
func (v VRM) Validate() error {
	if v.Vout <= 0 {
		return fmt.Errorf("pdn: nonpositive VRM output %g V", v.Vout)
	}
	if v.Efficiency <= 0 || v.Efficiency > 1 {
		return fmt.Errorf("pdn: VRM efficiency %g out of (0,1]", v.Efficiency)
	}
	if v.OutputResistance < 0 {
		return fmt.Errorf("pdn: negative VRM output resistance %g", v.OutputResistance)
	}
	return nil
}

// InputPower returns the power (W) the VRM draws from the flow cells to
// deliver outputPower to the grid.
func (v VRM) InputPower(outputPower float64) float64 { return outputPower / v.Efficiency }

// DefaultVRM returns the case-study VRM: 1.0 V output at 86% efficiency
// (the switched-capacitor converter of the paper's reference [22]) with
// a 5 mohm output impedance.
func DefaultVRM() VRM {
	return VRM{Vout: 1.0, Efficiency: 0.86, OutputResistance: 5e-3}
}

// ViaSite is one TSV bundle feeding the grid from a VRM output.
type ViaSite struct {
	// X, Y is the site location on the die (m).
	X, Y float64
	// Resistance is the series resistance (ohm) of the TSV bundle plus
	// the VRM output impedance.
	Resistance float64
}

// Problem describes one power-grid DC solve.
type Problem struct {
	Floorplan *floorplan.Floorplan
	// SheetResistance of the on-chip power grid (ohm/square).
	SheetResistance float64
	// Supply is the VRM-regulated source voltage (V).
	Supply float64
	// Sites are the VRM/TSV injection points.
	Sites []ViaSite
	// LoadDensity is the sink current density field (A/m2) on the solve
	// grid; build it with CacheLoad or a custom map.
	LoadDensity *mesh.Field2D
	// NX, NY are the grid resolution (defaults 106x85, ~0.25 mm cells).
	NX, NY int
	// Warm optionally carries the voltage field between solves: repeated
	// solves of the same grid (sweeps, co-simulation outer loops) seed
	// the next CG run from the previous solution instead of the flat
	// supply level. The cached field auto-invalidates on a resolution
	// change (length check); callers changing the mesh semantics at a
	// fixed resolution should Invalidate explicitly.
	Warm *num.WarmStart
}

// Validate reports whether the problem is well posed.
func (p *Problem) Validate() error {
	if p.Floorplan == nil {
		return fmt.Errorf("pdn: nil floorplan")
	}
	if p.SheetResistance <= 0 {
		return fmt.Errorf("pdn: nonpositive sheet resistance %g", p.SheetResistance)
	}
	if p.Supply <= 0 {
		return fmt.Errorf("pdn: nonpositive supply %g", p.Supply)
	}
	if len(p.Sites) == 0 {
		return fmt.Errorf("pdn: no via sites")
	}
	for k, s := range p.Sites {
		if s.Resistance <= 0 {
			return fmt.Errorf("pdn: site %d has nonpositive resistance", k)
		}
		if s.X < 0 || s.X > p.Floorplan.Width || s.Y < 0 || s.Y > p.Floorplan.Height {
			return fmt.Errorf("pdn: site %d at (%g, %g) outside die", k, s.X, s.Y)
		}
	}
	if p.LoadDensity == nil {
		return fmt.Errorf("pdn: nil load density")
	}
	return nil
}

func (p *Problem) grid() *mesh.Grid2D {
	nx, ny := p.NX, p.NY
	if nx == 0 {
		nx = 106
	}
	if ny == 0 {
		ny = 85
	}
	return mesh.NewUniformGrid2D(p.Floorplan.Width, p.Floorplan.Height, nx, ny)
}

// Solution is the solved grid state.
type Solution struct {
	Grid *mesh.Grid2D
	// V is the node voltage field (V).
	V *mesh.Field2D
	// MinV, MaxV are the voltage extremes over the die.
	MinV, MaxV float64
	// MinVCache is the minimum voltage inside cache units (the quantity
	// that matters for the Fig. 8 experiment).
	MinVCache float64
	// TotalLoad is the summed sink current (A).
	TotalLoad float64
	// SiteCurrents are the injection currents per via site (A).
	SiteCurrents []float64
	// WorstX, WorstY locate the minimum cache voltage.
	WorstX, WorstY float64
}

// Session caches one assembled PDN grid for repeated solves where only
// the load map and the supply level change. The MNA matrix depends only
// on the grid geometry, the sheet resistance and the via sites — load
// currents and the supply voltage enter the right-hand side alone — so
// across a parameter sweep every point shares the matrix, the
// preconditioner (geometric multigrid above the auto threshold; setup
// is paid once here, not per point) and the Krylov workspace. The
// internal warm start chains voltage fields between consecutive solves.
// A Session is not safe for concurrent use.
type Session struct {
	p         *Problem
	g         *mesh.Grid2D
	solver    *num.SparseSolver
	siteNodes []int
	b, x      []float64
	bb, xx    []float64 // column-major batch blocks (SolveBatch scratch)
	warm      num.WarmStart
}

// NewSession validates the problem and assembles the conductance matrix
// once. The problem's LoadDensity and Supply act as defaults for the
// package-level Solve; Session.Solve takes both per call.
func NewSession(p *Problem) (*Session, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := p.grid()
	n := g.NumCells()
	co := num.NewCOO(n, n)
	// Mesh conductances: between laterally adjacent nodes,
	// G = (w_perp / d) / Rs.
	for j := 0; j < g.NY(); j++ {
		for i := 0; i < g.NX(); i++ {
			row := g.Index(i, j)
			if i < g.NX()-1 {
				cond := (g.Y.Widths[j] / g.X.CenterSpacing(i)) / p.SheetResistance
				col := g.Index(i+1, j)
				co.Add(row, row, cond)
				co.Add(col, col, cond)
				co.Add(row, col, -cond)
				co.Add(col, row, -cond)
			}
			if j < g.NY()-1 {
				cond := (g.X.Widths[i] / g.Y.CenterSpacing(j)) / p.SheetResistance
				col := g.Index(i, j+1)
				co.Add(row, row, cond)
				co.Add(col, col, cond)
				co.Add(row, col, -cond)
				co.Add(col, row, -cond)
			}
		}
	}
	// Sources: conductance to the fixed supply (the supply level itself
	// is RHS-only).
	siteNodes := make([]int, len(p.Sites))
	for k, s := range p.Sites {
		i := g.X.FindCell(s.X)
		j := g.Y.FindCell(s.Y)
		node := g.Index(i, j)
		siteNodes[k] = node
		co.Add(node, node, 1/s.Resistance)
	}
	a := co.ToCSR()
	shape := num.GridShape{NX: g.NX(), NY: g.NY()}
	// The MNA stamps are symmetric by construction: CG without a scan.
	// The grid shape lets the preconditioner policy build geometric
	// multigrid for the default 106x85 grid and above.
	solver := num.NewSparseSolverSymmetric(a, true, num.IterOptions{Tol: 1e-11, Shape: &shape})
	return &Session{
		p: p, g: g, solver: solver, siteNodes: siteNodes,
		b: make([]float64, n), x: make([]float64, n),
	}, nil
}

// Solve computes the DC operating point for the given load map and
// supply level, warm-starting from the previous call's voltage field.
func (s *Session) Solve(load *mesh.Field2D, supply float64) (*Solution, error) {
	return s.solveWith(load, supply, &s.warm)
}

// checkInputs validates one (load, supply) pair against the session
// grid.
func (s *Session) checkInputs(load *mesh.Field2D, supply float64) error {
	if load == nil {
		return fmt.Errorf("pdn: nil load density")
	}
	if supply <= 0 {
		return fmt.Errorf("pdn: nonpositive supply %g", supply)
	}
	if load.Grid.NX() != s.g.NX() || load.Grid.NY() != s.g.NY() {
		return fmt.Errorf("pdn: load density grid %dx%d does not match solve grid %dx%d",
			load.Grid.NX(), load.Grid.NY(), s.g.NX(), s.g.NY())
	}
	return nil
}

// fillRHS writes the MNA right-hand side for (load, supply) into dst —
// the session RHS for a single solve, or one column of a batched block.
func (s *Session) fillRHS(dst []float64, load *mesh.Field2D, supply float64) {
	g := s.g
	for j := 0; j < g.NY(); j++ {
		for i := 0; i < g.NX(); i++ {
			dst[g.Index(i, j)] = -load.At(i, j) * g.CellArea(i, j)
		}
	}
	for k, node := range s.siteNodes {
		dst[node] += supply / s.p.Sites[k].Resistance
	}
}

// buildSolution extracts the Solution fields from a solved voltage
// vector (one column of a batched block, or the session vector). The
// Solution owns a fresh copy of the field.
func (s *Session) buildSolution(x []float64, load *mesh.Field2D, supply float64) *Solution {
	g := s.g
	v := make([]float64, g.NumCells())
	copy(v, x)
	sol := &Solution{
		Grid:         g,
		V:            &mesh.Field2D{Grid: g, Data: v},
		MinV:         math.Inf(1),
		MaxV:         math.Inf(-1),
		MinVCache:    math.Inf(1),
		SiteCurrents: make([]float64, len(s.p.Sites)),
	}
	for j := 0; j < g.NY(); j++ {
		for i := 0; i < g.NX(); i++ {
			val := sol.V.At(i, j)
			if val < sol.MinV {
				sol.MinV = val
			}
			if val > sol.MaxV {
				sol.MaxV = val
			}
			u := s.p.Floorplan.UnitAt(g.X.Centers[i], g.Y.Centers[j])
			if u != nil && u.Kind.IsCache() && val < sol.MinVCache {
				sol.MinVCache = val
				sol.WorstX, sol.WorstY = g.X.Centers[i], g.Y.Centers[j]
			}
			sol.TotalLoad += load.At(i, j) * g.CellArea(i, j)
		}
	}
	for k, node := range s.siteNodes {
		sol.SiteCurrents[k] = (supply - v[node]) / s.p.Sites[k].Resistance
	}
	return sol
}

func (s *Session) solveWith(load *mesh.Field2D, supply float64, warm *num.WarmStart) (*Solution, error) {
	if err := s.checkInputs(load, supply); err != nil {
		return nil, err
	}
	s.fillRHS(s.b, load, supply)
	if !warm.Seed(s.x) {
		num.Fill(s.x, supply) // cold start at the supply level
	}
	if _, err := s.solver.Solve(s.b, s.x); err != nil {
		warm.Invalidate()
		return nil, fmt.Errorf("pdn: grid solve failed: %w", err)
	}
	warm.Save(s.x)
	return s.buildSolution(s.x, load, supply), nil
}

// batchWidth caps how many right-hand sides one block solve carries:
// beyond it the block's columns stop fitting cache alongside the
// matrix and the per-iteration reductions start to dominate, so wider
// batches are split into consecutive blocks.
const batchWidth = 8

// SolveBatch computes the DC operating points of several (load, supply)
// pairs in one batched block-CG solve per group of batchWidth: the
// systems share the session matrix, so one matrix traversal per Krylov
// iteration serves the whole group instead of each point traversing it
// alone. This is the sweep-chain path — neighboring sweep points differ
// only in their right-hand sides. Results match Solve point for point
// (same matrix, same tolerance); the session warm-start cache carries
// the last point's field to the next call, matching Solve's chaining.
func (s *Session) SolveBatch(loads []*mesh.Field2D, supplies []float64) ([]*Solution, error) {
	if len(loads) != len(supplies) {
		return nil, fmt.Errorf("pdn: %d loads vs %d supplies", len(loads), len(supplies))
	}
	if len(loads) == 0 {
		return nil, nil
	}
	for i := range loads {
		if err := s.checkInputs(loads[i], supplies[i]); err != nil {
			return nil, fmt.Errorf("pdn: batch point %d: %w", i, err)
		}
	}
	n := s.g.NumCells()
	out := make([]*Solution, 0, len(loads))
	for lo := 0; lo < len(loads); lo += batchWidth {
		hi := lo + batchWidth
		if hi > len(loads) {
			hi = len(loads)
		}
		k := hi - lo
		if k == 1 {
			sol, err := s.solveWith(loads[lo], supplies[lo], &s.warm)
			if err != nil {
				return nil, err
			}
			out = append(out, sol)
			continue
		}
		if cap(s.bb) < n*k {
			s.bb = make([]float64, n*k)
			s.xx = make([]float64, n*k)
		}
		bb, xx := s.bb[:n*k], s.xx[:n*k]
		seeded := s.warm.Seed(s.x)
		for j := 0; j < k; j++ {
			xj := xx[j*n : (j+1)*n]
			s.fillRHS(bb[j*n:(j+1)*n], loads[lo+j], supplies[lo+j])
			if seeded {
				copy(xj, s.x)
			} else {
				num.Fill(xj, supplies[lo+j])
			}
		}
		if _, err := s.solver.SolveBlock(bb, xx, k); err != nil {
			s.warm.Invalidate()
			return nil, fmt.Errorf("pdn: batched grid solve failed: %w", err)
		}
		for j := 0; j < k; j++ {
			out = append(out, s.buildSolution(xx[j*n:(j+1)*n], loads[lo+j], supplies[lo+j]))
		}
		copy(s.x, out[len(out)-1].V.Data)
		s.warm.Save(s.x)
	}
	return out, nil
}

// Solve computes the DC operating point. One-shot callers pay assembly
// and preconditioner setup per call; repeated solves over a fixed grid
// should hold a Session instead.
func Solve(p *Problem) (*Solution, error) {
	s, err := NewSession(p)
	if err != nil {
		return nil, err
	}
	return s.solveWith(p.LoadDensity, p.Supply, p.Warm)
}

// TotalSourceCurrent sums the via-site injections (A); at DC it must
// equal TotalLoad (asserted by tests as a KCL check).
func (s *Solution) TotalSourceCurrent() float64 {
	t := 0.0
	for _, i := range s.SiteCurrents {
		t += i
	}
	return t
}
