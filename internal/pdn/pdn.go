// Package pdn models the on-chip power delivery network of the case
// study: a resistive power-grid mesh over the die, current-sink loads
// from the floorplan power map, and microfluidic-fed voltage-regulator
// (VRM) sources injecting through TSV via sites above the cache regions
// (paper Figs. 5, 6 and 8). The DC operating point is a modified nodal
// analysis solved with preconditioned conjugate gradients.
package pdn

import (
	"fmt"
	"math"

	"bright/internal/floorplan"
	"bright/internal/mesh"
	"bright/internal/num"
)

// VRM is a voltage regulator module converting the flow-cell potential
// to the chip supply level (the paper cites switched-capacitor
// converters at 86% efficiency, reference [22]).
type VRM struct {
	// Vout is the regulated output voltage (V).
	Vout float64
	// Efficiency in (0, 1].
	Efficiency float64
	// OutputResistance is the converter output impedance (ohm), lumped
	// into each via site's source resistance.
	OutputResistance float64
}

// Validate reports whether the VRM parameters are physical.
func (v VRM) Validate() error {
	if v.Vout <= 0 {
		return fmt.Errorf("pdn: nonpositive VRM output %g V", v.Vout)
	}
	if v.Efficiency <= 0 || v.Efficiency > 1 {
		return fmt.Errorf("pdn: VRM efficiency %g out of (0,1]", v.Efficiency)
	}
	if v.OutputResistance < 0 {
		return fmt.Errorf("pdn: negative VRM output resistance %g", v.OutputResistance)
	}
	return nil
}

// InputPower returns the power (W) the VRM draws from the flow cells to
// deliver outputPower to the grid.
func (v VRM) InputPower(outputPower float64) float64 { return outputPower / v.Efficiency }

// DefaultVRM returns the case-study VRM: 1.0 V output at 86% efficiency
// (the switched-capacitor converter of the paper's reference [22]) with
// a 5 mohm output impedance.
func DefaultVRM() VRM {
	return VRM{Vout: 1.0, Efficiency: 0.86, OutputResistance: 5e-3}
}

// ViaSite is one TSV bundle feeding the grid from a VRM output.
type ViaSite struct {
	// X, Y is the site location on the die (m).
	X, Y float64
	// Resistance is the series resistance (ohm) of the TSV bundle plus
	// the VRM output impedance.
	Resistance float64
}

// Problem describes one power-grid DC solve.
type Problem struct {
	Floorplan *floorplan.Floorplan
	// SheetResistance of the on-chip power grid (ohm/square).
	SheetResistance float64
	// Supply is the VRM-regulated source voltage (V).
	Supply float64
	// Sites are the VRM/TSV injection points.
	Sites []ViaSite
	// LoadDensity is the sink current density field (A/m2) on the solve
	// grid; build it with CacheLoad or a custom map.
	LoadDensity *mesh.Field2D
	// NX, NY are the grid resolution (defaults 106x85, ~0.25 mm cells).
	NX, NY int
	// Warm optionally carries the voltage field between solves: repeated
	// solves of the same grid (sweeps, co-simulation outer loops) seed
	// the next CG run from the previous solution instead of the flat
	// supply level. The cached field auto-invalidates on a resolution
	// change (length check); callers changing the mesh semantics at a
	// fixed resolution should Invalidate explicitly.
	Warm *num.WarmStart
}

// Validate reports whether the problem is well posed.
func (p *Problem) Validate() error {
	if p.Floorplan == nil {
		return fmt.Errorf("pdn: nil floorplan")
	}
	if p.SheetResistance <= 0 {
		return fmt.Errorf("pdn: nonpositive sheet resistance %g", p.SheetResistance)
	}
	if p.Supply <= 0 {
		return fmt.Errorf("pdn: nonpositive supply %g", p.Supply)
	}
	if len(p.Sites) == 0 {
		return fmt.Errorf("pdn: no via sites")
	}
	for k, s := range p.Sites {
		if s.Resistance <= 0 {
			return fmt.Errorf("pdn: site %d has nonpositive resistance", k)
		}
		if s.X < 0 || s.X > p.Floorplan.Width || s.Y < 0 || s.Y > p.Floorplan.Height {
			return fmt.Errorf("pdn: site %d at (%g, %g) outside die", k, s.X, s.Y)
		}
	}
	if p.LoadDensity == nil {
		return fmt.Errorf("pdn: nil load density")
	}
	return nil
}

func (p *Problem) grid() *mesh.Grid2D {
	nx, ny := p.NX, p.NY
	if nx == 0 {
		nx = 106
	}
	if ny == 0 {
		ny = 85
	}
	return mesh.NewUniformGrid2D(p.Floorplan.Width, p.Floorplan.Height, nx, ny)
}

// Solution is the solved grid state.
type Solution struct {
	Grid *mesh.Grid2D
	// V is the node voltage field (V).
	V *mesh.Field2D
	// MinV, MaxV are the voltage extremes over the die.
	MinV, MaxV float64
	// MinVCache is the minimum voltage inside cache units (the quantity
	// that matters for the Fig. 8 experiment).
	MinVCache float64
	// TotalLoad is the summed sink current (A).
	TotalLoad float64
	// SiteCurrents are the injection currents per via site (A).
	SiteCurrents []float64
	// WorstX, WorstY locate the minimum cache voltage.
	WorstX, WorstY float64
}

// Solve computes the DC operating point.
func Solve(p *Problem) (*Solution, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	g := p.grid()
	if p.LoadDensity.Grid.NX() != g.NX() || p.LoadDensity.Grid.NY() != g.NY() {
		return nil, fmt.Errorf("pdn: load density grid %dx%d does not match solve grid %dx%d",
			p.LoadDensity.Grid.NX(), p.LoadDensity.Grid.NY(), g.NX(), g.NY())
	}
	n := g.NumCells()
	co := num.NewCOO(n, n)
	b := make([]float64, n)
	// Mesh conductances: between laterally adjacent nodes,
	// G = (w_perp / d) / Rs.
	for j := 0; j < g.NY(); j++ {
		for i := 0; i < g.NX(); i++ {
			row := g.Index(i, j)
			if i < g.NX()-1 {
				cond := (g.Y.Widths[j] / g.X.CenterSpacing(i)) / p.SheetResistance
				col := g.Index(i+1, j)
				co.Add(row, row, cond)
				co.Add(col, col, cond)
				co.Add(row, col, -cond)
				co.Add(col, row, -cond)
			}
			if j < g.NY()-1 {
				cond := (g.X.Widths[i] / g.Y.CenterSpacing(j)) / p.SheetResistance
				col := g.Index(i, j+1)
				co.Add(row, row, cond)
				co.Add(col, col, cond)
				co.Add(row, col, -cond)
				co.Add(col, row, -cond)
			}
			// Load sink.
			load := p.LoadDensity.At(i, j) * g.CellArea(i, j)
			b[row] -= load
		}
	}
	// Sources: conductance to the fixed supply.
	siteNodes := make([]int, len(p.Sites))
	for k, s := range p.Sites {
		i := g.X.FindCell(s.X)
		j := g.Y.FindCell(s.Y)
		node := g.Index(i, j)
		siteNodes[k] = node
		gs := 1 / s.Resistance
		co.Add(node, node, gs)
		b[node] += gs * p.Supply
	}
	a := co.ToCSR()
	x := make([]float64, n)
	if !p.Warm.Seed(x) {
		num.Fill(x, p.Supply) // cold start at the supply level
	}
	// The MNA stamps are symmetric by construction: CG without a scan.
	solver := num.NewSparseSolverSymmetric(a, true, num.IterOptions{Tol: 1e-11, MaxIter: 40 * n})
	if _, err := solver.Solve(b, x); err != nil {
		return nil, fmt.Errorf("pdn: grid solve failed: %w", err)
	}
	p.Warm.Save(x)
	sol := &Solution{
		Grid:         g,
		V:            &mesh.Field2D{Grid: g, Data: x},
		MinV:         math.Inf(1),
		MaxV:         math.Inf(-1),
		MinVCache:    math.Inf(1),
		SiteCurrents: make([]float64, len(p.Sites)),
	}
	for j := 0; j < g.NY(); j++ {
		for i := 0; i < g.NX(); i++ {
			v := sol.V.At(i, j)
			if v < sol.MinV {
				sol.MinV = v
			}
			if v > sol.MaxV {
				sol.MaxV = v
			}
			u := p.Floorplan.UnitAt(g.X.Centers[i], g.Y.Centers[j])
			if u != nil && u.Kind.IsCache() && v < sol.MinVCache {
				sol.MinVCache = v
				sol.WorstX, sol.WorstY = g.X.Centers[i], g.Y.Centers[j]
			}
			sol.TotalLoad += p.LoadDensity.At(i, j) * g.CellArea(i, j)
		}
	}
	for k, node := range siteNodes {
		sol.SiteCurrents[k] = (p.Supply - x[node]) / p.Sites[k].Resistance
	}
	return sol, nil
}

// TotalSourceCurrent sums the via-site injections (A); at DC it must
// equal TotalLoad (asserted by tests as a KCL check).
func (s *Solution) TotalSourceCurrent() float64 {
	t := 0.0
	for _, i := range s.SiteCurrents {
		t += i
	}
	return t
}
