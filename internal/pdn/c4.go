package pdn

import (
	"fmt"
	"math"

	"bright/internal/floorplan"
)

// C4Spec describes a conventional package-fed controlled-collapse
// chip-connection (C4) pad array — the baseline power-delivery medium
// the paper argues against (its Section I: adding power/ground pads
// "decreases the number of pins dedicated for I/O, limiting the
// off-chip bandwidth").
type C4Spec struct {
	// Pitch is the pad pitch (m); 400 um is typical for the
	// generation's organic flip-chip packages.
	Pitch float64
	// MaxCurrentPerPad is the reliability (electromigration) limit per
	// pad (A); ~0.2 A is a standard planning number, used here with
	// the derating below.
	MaxCurrentPerPad float64
	// Derating divides the per-pad limit for reliability margin (>= 1).
	Derating float64
	// PadResistance is the series resistance of one pad plus its
	// package via (ohm).
	PadResistance float64
}

// DefaultC4 returns a representative flip-chip pad array for the
// POWER7+ generation.
func DefaultC4() C4Spec {
	return C4Spec{
		Pitch:            400e-6,
		MaxCurrentPerPad: 0.2,
		Derating:         2.0,
		PadResistance:    12e-3,
	}
}

// Validate reports whether the spec is physical.
func (c C4Spec) Validate() error {
	if c.Pitch <= 0 || c.MaxCurrentPerPad <= 0 || c.PadResistance <= 0 {
		return fmt.Errorf("pdn: nonphysical C4 spec %+v", c)
	}
	if c.Derating < 1 {
		return fmt.Errorf("pdn: C4 derating %g < 1", c.Derating)
	}
	return nil
}

// TotalPads returns the number of pad sites available under the die.
func (c C4Spec) TotalPads(f *floorplan.Floorplan) int {
	nx := int(f.Width / c.Pitch)
	ny := int(f.Height / c.Pitch)
	return nx * ny
}

// PadsForRail returns the number of pads a supply rail drawing current
// I (A) consumes: power pads at the derated per-pad limit, plus an
// equal number of ground-return pads (the standard 1:1 P/G allocation).
func (c C4Spec) PadsForRail(current float64) int {
	if current <= 0 {
		return 0
	}
	perPad := c.MaxCurrentPerPad / c.Derating
	n := int(math.Ceil(current / perPad))
	return 2 * n // power + ground
}

// C4BaselineResult compares conventional C4 delivery of the cache rail
// against the microfluidic supply (extension experiment E1).
type C4BaselineResult struct {
	// TotalPads under the die.
	TotalPads int
	// CacheRailPads consumed by the cache rail when fed conventionally.
	CacheRailPads int
	// FullChipPads consumed if the whole chip were fed at the C4 limit
	// (context: how tight the pad budget is overall).
	FullChipPads int
	// FreedPadFractionPct = CacheRailPads / TotalPads * 100: the pad
	// budget returned to I/O by the microfluidic cache supply.
	FreedPadFractionPct float64
	// IOGainPct: relative growth of the I/O pad pool, assuming the
	// non-power pads were all I/O before.
	IOGainPct float64
	// ConventionalMinV is the minimum cache voltage with the C4
	// baseline grid (distributed package feed).
	ConventionalMinV float64
	// MicrofluidicMinV is the Fig. 8 value for comparison.
	MicrofluidicMinV float64
}

// C4Baseline evaluates the conventional baseline for the POWER7+ cache
// rail: pad accounting plus a PDN solve with the pads as distributed
// via sites over the cache area.
func C4Baseline(spec C4Spec, totalChipCurrent float64) (*C4BaselineResult, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	p, _, err := Power7Problem()
	if err != nil {
		return nil, err
	}
	f := p.Floorplan
	res := &C4BaselineResult{TotalPads: spec.TotalPads(f)}

	// Microfluidic case (Fig. 8 configuration).
	micro, err := Solve(p)
	if err != nil {
		return nil, err
	}
	res.MicrofluidicMinV = micro.MinVCache
	cacheCurrent := micro.TotalLoad

	res.CacheRailPads = spec.PadsForRail(cacheCurrent)
	res.FullChipPads = spec.PadsForRail(totalChipCurrent)
	if res.CacheRailPads > res.TotalPads {
		return nil, fmt.Errorf("pdn: cache rail needs %d pads, only %d available",
			res.CacheRailPads, res.TotalPads)
	}
	res.FreedPadFractionPct = 100 * float64(res.CacheRailPads) / float64(res.TotalPads)
	ioBefore := res.TotalPads - res.CacheRailPads - res.FullChipPads
	if ioBefore <= 0 {
		return nil, fmt.Errorf("pdn: no I/O pads left in the conventional baseline (%d total, %d power)",
			res.TotalPads, res.CacheRailPads+res.FullChipPads)
	}
	res.IOGainPct = 100 * float64(res.CacheRailPads) / float64(ioBefore)

	// Conventional baseline grid: the cache rail fed from below through
	// pads distributed on the C4 pitch over the cache units.
	conv := *p
	conv.Sites = c4SitesOverCache(f, spec)
	if len(conv.Sites) == 0 {
		return nil, fmt.Errorf("pdn: no C4 sites over cache")
	}
	sol, err := Solve(&conv)
	if err != nil {
		return nil, err
	}
	res.ConventionalMinV = sol.MinVCache
	return res, nil
}

// c4SitesOverCache places a via site at every C4 pad location falling
// inside a cache unit. To keep the solve affordable the sites are
// placed on a 4x-coarsened pad grid with proportionally reduced series
// resistance (4x4 pads lumped per site).
func c4SitesOverCache(f *floorplan.Floorplan, spec C4Spec) []ViaSite {
	const lump = 4
	pitch := spec.Pitch * lump
	r := spec.PadResistance / (lump * lump)
	var sites []ViaSite
	for x := pitch / 2; x < f.Width; x += pitch {
		for y := pitch / 2; y < f.Height; y += pitch {
			if u := f.UnitAt(x, y); u != nil && u.Kind.IsCache() {
				sites = append(sites, ViaSite{X: x, Y: y, Resistance: r})
			}
		}
	}
	return sites
}
