package pdn

import (
	"math"
	"testing"
)

func transientProblem(t *testing.T, decap, lag float64) *TransientProblem {
	t.Helper()
	base, _, err := Power7Problem()
	if err != nil {
		t.Fatal(err)
	}
	base.NX, base.NY = 53, 42 // coarser grid for transient speed
	base.LoadDensity = CacheLoad(base.Floorplan, base.grid(), base.Supply)
	return &TransientProblem{
		Base:            base,
		DecapPerArea:    decap,
		StepFraction:    0.1,
		VRMResponseTime: lag,
		Dt:              1e-7,
		Steps:           60,
	}
}

func TestTransientDroopShrinksWithDecap(t *testing.T) {
	prev := -1.0
	for _, decap := range []float64{5e-2, 2e-2, 5e-3} {
		res, err := SolveTransient(transientProblem(t, decap, 1e-6))
		if err != nil {
			t.Fatal(err)
		}
		if res.DroopMV <= prev {
			t.Fatalf("droop must grow as decap shrinks: %.1f mV at %.0e", res.DroopMV, decap)
		}
		prev = res.DroopMV
		if res.WorstV <= 0 {
			t.Fatalf("grid collapsed: %.3f V", res.WorstV)
		}
	}
}

func TestTransientRecoversToSettled(t *testing.T) {
	res, err := SolveTransient(transientProblem(t, 2e-2, 1e-6))
	if err != nil {
		t.Fatal(err)
	}
	last := res.MinV[len(res.MinV)-1]
	if math.Abs(last-res.SettledV) > 0.01 {
		t.Fatalf("did not recover: %.4f vs settled %.4f", last, res.SettledV)
	}
	// The worst droop happens during the lag window, not after.
	worstIdx := 0
	for k, v := range res.MinV {
		if v == res.WorstV {
			worstIdx = k
		}
	}
	if res.Times[worstIdx] > 1.5e-6 {
		t.Fatalf("worst droop at %.2e s, after the VRM lag", res.Times[worstIdx])
	}
}

func TestTransientLongerLagDeeperDroop(t *testing.T) {
	short, err := SolveTransient(transientProblem(t, 2e-2, 5e-7))
	if err != nil {
		t.Fatal(err)
	}
	long, err := SolveTransient(transientProblem(t, 2e-2, 2e-6))
	if err != nil {
		t.Fatal(err)
	}
	if long.DroopMV <= short.DroopMV {
		t.Fatalf("longer lag must droop deeper: %.1f vs %.1f mV", long.DroopMV, short.DroopMV)
	}
}

func TestTransientValidation(t *testing.T) {
	p := transientProblem(t, 2e-2, 1e-6)
	p.DecapPerArea = 0
	if _, err := SolveTransient(p); err == nil {
		t.Fatal("zero decap accepted")
	}
	p = transientProblem(t, 2e-2, 1e-6)
	p.StepFraction = 1
	if _, err := SolveTransient(p); err == nil {
		t.Fatal("unit step fraction accepted")
	}
	p = transientProblem(t, 2e-2, 1e-6)
	p.Steps = 5 // run shorter than the lag
	if _, err := SolveTransient(p); err == nil {
		t.Fatal("run shorter than the VRM lag accepted")
	}
	p = transientProblem(t, 2e-2, 1e-6)
	p.Base = nil
	if _, err := SolveTransient(p); err == nil {
		t.Fatal("nil base accepted")
	}
}
