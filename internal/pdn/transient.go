package pdn

import (
	"context"
	"fmt"
	"math"

	"bright/internal/num"
)

// TransientProblem extends the DC grid with on-die decoupling
// capacitance, a load step and a VRM response lag: the caches wake from
// idle to full current at t=0, but the switched-capacitor VRMs keep
// delivering their pre-step current until their control loop reacts
// (VRMResponseTime). During that window only the decap supplies the
// step, and the grid droops below its final DC value — the transient
// half of the power-integrity story of Figs. 5-6.
type TransientProblem struct {
	// Base is the DC problem (grid, sites, full-load map).
	Base *Problem
	// DecapPerArea is the decoupling capacitance per die area (F/m2);
	// ~1e-2..5e-2 F/m2 (10-50 nF/mm2) is typical on-die decap.
	DecapPerArea float64
	// StepFraction: the load steps from StepFraction*I to I at t=0.
	StepFraction float64
	// VRMResponseTime is the regulation lag (s); switched-capacitor
	// converters react within a few switching periods, ~1 us.
	VRMResponseTime float64
	// Dt and Steps control the backward-Euler integration; the run
	// must cover the response time (Dt*Steps > VRMResponseTime).
	Dt    float64
	Steps int
}

// Validate reports whether the problem is well posed.
func (p *TransientProblem) Validate() error {
	if p.Base == nil {
		return fmt.Errorf("pdn: nil base problem")
	}
	if err := p.Base.Validate(); err != nil {
		return err
	}
	if p.DecapPerArea <= 0 {
		return fmt.Errorf("pdn: nonpositive decap %g", p.DecapPerArea)
	}
	if p.StepFraction < 0 || p.StepFraction >= 1 {
		return fmt.Errorf("pdn: step fraction %g out of [0,1)", p.StepFraction)
	}
	if p.VRMResponseTime <= 0 {
		return fmt.Errorf("pdn: nonpositive VRM response time")
	}
	if p.Dt <= 0 || p.Steps <= 0 {
		return fmt.Errorf("pdn: invalid stepping dt=%g steps=%d", p.Dt, p.Steps)
	}
	if p.Dt*float64(p.Steps) <= p.VRMResponseTime {
		return fmt.Errorf("pdn: run (%g s) must cover the VRM response time (%g s)",
			p.Dt*float64(p.Steps), p.VRMResponseTime)
	}
	return nil
}

// TransientResult is the droop trajectory.
type TransientResult struct {
	// Times (s) and MinV (V): the grid's minimum voltage per step.
	Times, MinV []float64
	// WorstV is the deepest droop over the run.
	WorstV float64
	// SettledV is the final (DC full-load) minimum voltage.
	SettledV float64
	// DroopMV = (SettledV - WorstV)*1000: the transient penalty below
	// the DC operating point.
	DroopMV float64
}

// gridStamp is the shared stamping of one PDN grid: the mesh
// conductance matrix (no sites, no capacitance), the full-load current
// per node, the decap per node and the site nodes/conductances. Both
// the one-shot wake-up study and the streaming TransientSession build
// their phase matrices from it.
type gridStamp struct {
	n          int
	gridCSR    *num.CSR
	loadFull   []float64 // A per node at full load
	capPerNode []float64 // F per node (0 when decapPerArea is 0)
	siteNodes  []int
	siteG      []float64
}

// stamp assembles the grid conductances, per-node loads and decap for
// the problem's mesh. The load grid must match the solve grid.
func stamp(base *Problem, decapPerArea float64) (*gridStamp, error) {
	g := base.grid()
	if base.LoadDensity.Grid.NX() != g.NX() || base.LoadDensity.Grid.NY() != g.NY() {
		return nil, fmt.Errorf("pdn: load grid mismatch")
	}
	n := g.NumCells()
	gridCOO := num.NewCOO(n, n)
	st := &gridStamp{
		n:          n,
		loadFull:   make([]float64, n),
		capPerNode: make([]float64, n),
	}
	for j := 0; j < g.NY(); j++ {
		for i := 0; i < g.NX(); i++ {
			row := g.Index(i, j)
			if i < g.NX()-1 {
				cond := (g.Y.Widths[j] / g.X.CenterSpacing(i)) / base.SheetResistance
				col := g.Index(i+1, j)
				gridCOO.Add(row, row, cond)
				gridCOO.Add(col, col, cond)
				gridCOO.Add(row, col, -cond)
				gridCOO.Add(col, row, -cond)
			}
			if j < g.NY()-1 {
				cond := (g.X.Widths[i] / g.Y.CenterSpacing(j)) / base.SheetResistance
				col := g.Index(i, j+1)
				gridCOO.Add(row, row, cond)
				gridCOO.Add(col, col, cond)
				gridCOO.Add(row, col, -cond)
				gridCOO.Add(col, row, -cond)
			}
			area := g.CellArea(i, j)
			st.loadFull[row] = base.LoadDensity.At(i, j) * area
			st.capPerNode[row] = decapPerArea * area
		}
	}
	st.gridCSR = gridCOO.ToCSR()
	st.siteNodes = make([]int, len(base.Sites))
	st.siteG = make([]float64, len(base.Sites))
	for k, s := range base.Sites {
		st.siteNodes[k] = g.Index(g.X.FindCell(s.X), g.Y.FindCell(s.Y))
		st.siteG[k] = 1 / s.Resistance
	}
	return st, nil
}

// stampInto copies the grid conductances into a fresh COO for one phase
// matrix.
func (st *gridStamp) stampInto(dst *num.COO) {
	src := st.gridCSR
	for i := 0; i < src.Rows; i++ {
		for kk := src.RowPtr[i]; kk < src.RowPtr[i+1]; kk++ {
			dst.Add(i, src.ColIdx[kk], src.Val[kk])
		}
	}
}

// SolveTransient integrates the wake-up step with backward Euler.
func SolveTransient(p *TransientProblem) (*TransientResult, error) {
	return SolveTransientContext(context.Background(), p)
}

// SolveTransientContext is SolveTransient with cancellation, checked at
// every backward-Euler step boundary.
func SolveTransientContext(ctx context.Context, p *TransientProblem) (*TransientResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	base := p.Base
	g := base.grid()
	st, err := stamp(base, p.DecapPerArea)
	if err != nil {
		return nil, err
	}
	n := st.n
	// DC solve helper with voltage-source sites at the given load scale.
	dcCOO := num.NewCOO(n, n)
	st.stampInto(dcCOO)
	srcB := make([]float64, n)
	for k, node := range st.siteNodes {
		dcCOO.Add(node, node, st.siteG[k])
		srcB[node] += st.siteG[k] * base.Supply
	}
	aDC := dcCOO.ToCSR()
	// One cached solver per matrix for the whole run: the preconditioner
	// (geometric multigrid at the default resolution) and Krylov
	// workspace are built once and shared by every solve against that
	// matrix (all stamps here are symmetric by construction).
	shape := num.GridShape{NX: g.NX(), NY: g.NY()}
	dcSolver := num.NewSparseSolverSymmetric(aDC, true, num.IterOptions{Tol: 1e-11, Shape: &shape})
	solveDC := func(scale float64) ([]float64, error) {
		b := make([]float64, n)
		for k := range b {
			b[k] = srcB[k] - scale*st.loadFull[k]
		}
		x := make([]float64, n)
		num.Fill(x, base.Supply)
		if _, err := dcSolver.Solve(b, x); err != nil {
			return nil, err
		}
		return x, nil
	}
	x, err := solveDC(p.StepFraction)
	if err != nil {
		return nil, fmt.Errorf("pdn: idle DC solve: %w", err)
	}
	settled, err := solveDC(1)
	if err != nil {
		return nil, fmt.Errorf("pdn: settled DC solve: %w", err)
	}
	// Frozen VRM currents during the lag window.
	iFrozen := make([]float64, n)
	for k, node := range st.siteNodes {
		iFrozen[node] += st.siteG[k] * (base.Supply - x[node])
	}
	// Phase matrices with capacitance.
	lagCOO := num.NewCOO(n, n)
	st.stampInto(lagCOO)
	regCOO := num.NewCOO(n, n)
	st.stampInto(regCOO)
	for k, node := range st.siteNodes {
		regCOO.Add(node, node, st.siteG[k])
	}
	for row, c := range st.capPerNode {
		lagCOO.Add(row, row, c/p.Dt)
		regCOO.Add(row, row, c/p.Dt)
	}
	lagSolver := num.NewSparseSolverSymmetric(lagCOO.ToCSR(), true, num.IterOptions{Tol: 1e-10, Shape: &shape})
	regSolver := num.NewSparseSolverSymmetric(regCOO.ToCSR(), true, num.IterOptions{Tol: 1e-10, Shape: &shape})

	res := &TransientResult{WorstV: math.Inf(1)}
	rhs := make([]float64, n)
	for step := 1; step <= p.Steps; step++ {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		t := float64(step) * p.Dt
		inLag := t <= p.VRMResponseTime
		for k := range rhs {
			rhs[k] = -st.loadFull[k] + st.capPerNode[k]/p.Dt*x[k]
			if inLag {
				rhs[k] += iFrozen[k]
			} else {
				rhs[k] += srcB[k]
			}
		}
		solver := regSolver
		if inLag {
			solver = lagSolver
		}
		if _, err := solver.Solve(rhs, x); err != nil {
			return nil, fmt.Errorf("pdn: transient step %d: %w", step, err)
		}
		minV := num.MinSlice(x)
		res.Times = append(res.Times, t)
		res.MinV = append(res.MinV, minV)
		if minV < res.WorstV {
			res.WorstV = minV
		}
	}
	res.SettledV = num.MinSlice(settled)
	res.DroopMV = 1000 * (res.SettledV - res.WorstV)
	if res.DroopMV < 0 {
		res.DroopMV = 0
	}
	return res, nil
}

// TransientSession is the step-at-a-time form of the PDN transient: the
// regulated backward-Euler matrix (grid + site conductances + C/dt) is
// assembled and preconditioned once, and each Step advances the node
// voltage state by one dt under a caller-chosen load scale. Where
// SolveTransient runs one canned wake-up study, a TransientSession is
// co-stepped frame by frame with the thermal transient by the streaming
// digital-twin sessions (internal/stream): a workload-driven load step
// shows up as a voltage droop that the decap rides out over the next
// few steps, and the state vector is exposed for checkpoint/restore.
// A TransientSession is not safe for concurrent use.
type TransientSession struct {
	base   *Problem
	st     *gridStamp
	dt     float64
	solver *num.SparseSolver
	// lagSolver is the frozen-VRM phase matrix (no site conductances):
	// during a regulation lag only the decap supplies a load change.
	lagSolver *num.SparseSolver
	x         []float64
	rhs       []float64
	// cacheMask marks nodes inside cache units, the region whose
	// minimum voltage the paper's power-integrity experiment tracks.
	cacheMask []bool
	steps     int
}

// NewTransientSession assembles the regulated-phase backward-Euler
// system (the VRMs track the supply; the lag-phase study stays with
// SolveTransient) at the given decap density and step size. The voltage
// state is initialized to the flat supply level; step the session a few
// times at the starting load to settle it before trusting droops.
func NewTransientSession(base *Problem, decapPerArea, dt float64) (*TransientSession, error) {
	if err := base.Validate(); err != nil {
		return nil, err
	}
	if decapPerArea <= 0 {
		return nil, fmt.Errorf("pdn: nonpositive decap %g", decapPerArea)
	}
	if dt <= 0 {
		return nil, fmt.Errorf("pdn: nonpositive transient step dt=%g", dt)
	}
	st, err := stamp(base, decapPerArea)
	if err != nil {
		return nil, err
	}
	g := base.grid()
	co := num.NewCOO(st.n, st.n)
	st.stampInto(co)
	for k, node := range st.siteNodes {
		co.Add(node, node, st.siteG[k])
	}
	lagCO := num.NewCOO(st.n, st.n)
	st.stampInto(lagCO)
	for row, c := range st.capPerNode {
		co.Add(row, row, c/dt)
		lagCO.Add(row, row, c/dt)
	}
	shape := num.GridShape{NX: g.NX(), NY: g.NY()}
	ts := &TransientSession{
		base:      base,
		st:        st,
		dt:        dt,
		solver:    num.NewSparseSolverSymmetric(co.ToCSR(), true, num.IterOptions{Tol: 1e-10, Shape: &shape}),
		lagSolver: num.NewSparseSolverSymmetric(lagCO.ToCSR(), true, num.IterOptions{Tol: 1e-10, Shape: &shape}),
		x:         make([]float64, st.n),
		rhs:       make([]float64, st.n),
		cacheMask: make([]bool, st.n),
	}
	for j := 0; j < g.NY(); j++ {
		for i := 0; i < g.NX(); i++ {
			u := base.Floorplan.UnitAt(g.X.Centers[i], g.Y.Centers[j])
			ts.cacheMask[g.Index(i, j)] = u != nil && u.Kind.IsCache()
		}
	}
	num.Fill(ts.x, base.Supply)
	return ts, nil
}

// Dt returns the session's step size (s).
func (ts *TransientSession) Dt() float64 { return ts.dt }

// Steps returns the number of steps taken so far.
func (ts *TransientSession) Steps() int { return ts.steps }

// Step advances the grid by one backward-Euler step with the load map
// scaled by loadScale (1 = the base problem's full-load map), returning
// the minimum node voltage over the whole die and over the cache
// region. The supply level is the base problem's.
func (ts *TransientSession) Step(loadScale float64) (minV, minVCache float64, err error) {
	return ts.step(loadScale, false)
}

// StepFrozen advances one step with the VRM injections frozen at the
// currents they deliver into the present state: the regulation-lag
// phase, where a load change is carried by the decap alone until the
// converters react. Streaming sessions take one frozen step at each
// load change to expose the droop below the regulated trajectory.
func (ts *TransientSession) StepFrozen(loadScale float64) (minV, minVCache float64, err error) {
	return ts.step(loadScale, true)
}

func (ts *TransientSession) step(loadScale float64, frozen bool) (minV, minVCache float64, err error) {
	if loadScale < 0 {
		return 0, 0, fmt.Errorf("pdn: negative load scale %g", loadScale)
	}
	supply := ts.base.Supply
	for k := range ts.rhs {
		ts.rhs[k] = -loadScale*ts.st.loadFull[k] + ts.st.capPerNode[k]/ts.dt*ts.x[k]
	}
	solver := ts.solver
	if frozen {
		solver = ts.lagSolver
		for k, node := range ts.st.siteNodes {
			ts.rhs[node] += ts.st.siteG[k] * (supply - ts.x[node])
		}
	} else {
		for k, node := range ts.st.siteNodes {
			ts.rhs[node] += ts.st.siteG[k] * supply
		}
	}
	if _, err := solver.Solve(ts.rhs, ts.x); err != nil {
		return 0, 0, fmt.Errorf("pdn: transient step %d: %w", ts.steps+1, err)
	}
	ts.steps++
	minV = math.Inf(1)
	minVCache = math.Inf(1)
	for k, v := range ts.x {
		if v < minV {
			minV = v
		}
		if ts.cacheMask[k] && v < minVCache {
			minVCache = v
		}
	}
	return minV, minVCache, nil
}

// State returns a copy of the node voltage state (V per node) for
// checkpointing.
func (ts *TransientSession) State() []float64 {
	out := make([]float64, len(ts.x))
	copy(out, ts.x)
	return out
}

// Restore replaces the voltage state, resuming a checkpointed
// trajectory. The state length must match the session's grid.
func (ts *TransientSession) Restore(state []float64) error {
	if len(state) != len(ts.x) {
		return fmt.Errorf("pdn: restore state has %d nodes, session has %d", len(state), len(ts.x))
	}
	copy(ts.x, state)
	return nil
}
