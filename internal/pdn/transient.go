package pdn

import (
	"fmt"
	"math"

	"bright/internal/num"
)

// TransientProblem extends the DC grid with on-die decoupling
// capacitance, a load step and a VRM response lag: the caches wake from
// idle to full current at t=0, but the switched-capacitor VRMs keep
// delivering their pre-step current until their control loop reacts
// (VRMResponseTime). During that window only the decap supplies the
// step, and the grid droops below its final DC value — the transient
// half of the power-integrity story of Figs. 5-6.
type TransientProblem struct {
	// Base is the DC problem (grid, sites, full-load map).
	Base *Problem
	// DecapPerArea is the decoupling capacitance per die area (F/m2);
	// ~1e-2..5e-2 F/m2 (10-50 nF/mm2) is typical on-die decap.
	DecapPerArea float64
	// StepFraction: the load steps from StepFraction*I to I at t=0.
	StepFraction float64
	// VRMResponseTime is the regulation lag (s); switched-capacitor
	// converters react within a few switching periods, ~1 us.
	VRMResponseTime float64
	// Dt and Steps control the backward-Euler integration; the run
	// must cover the response time (Dt*Steps > VRMResponseTime).
	Dt    float64
	Steps int
}

// Validate reports whether the problem is well posed.
func (p *TransientProblem) Validate() error {
	if p.Base == nil {
		return fmt.Errorf("pdn: nil base problem")
	}
	if err := p.Base.Validate(); err != nil {
		return err
	}
	if p.DecapPerArea <= 0 {
		return fmt.Errorf("pdn: nonpositive decap %g", p.DecapPerArea)
	}
	if p.StepFraction < 0 || p.StepFraction >= 1 {
		return fmt.Errorf("pdn: step fraction %g out of [0,1)", p.StepFraction)
	}
	if p.VRMResponseTime <= 0 {
		return fmt.Errorf("pdn: nonpositive VRM response time")
	}
	if p.Dt <= 0 || p.Steps <= 0 {
		return fmt.Errorf("pdn: invalid stepping dt=%g steps=%d", p.Dt, p.Steps)
	}
	if p.Dt*float64(p.Steps) <= p.VRMResponseTime {
		return fmt.Errorf("pdn: run (%g s) must cover the VRM response time (%g s)",
			p.Dt*float64(p.Steps), p.VRMResponseTime)
	}
	return nil
}

// TransientResult is the droop trajectory.
type TransientResult struct {
	// Times (s) and MinV (V): the grid's minimum voltage per step.
	Times, MinV []float64
	// WorstV is the deepest droop over the run.
	WorstV float64
	// SettledV is the final (DC full-load) minimum voltage.
	SettledV float64
	// DroopMV = (SettledV - WorstV)*1000: the transient penalty below
	// the DC operating point.
	DroopMV float64
}

// SolveTransient integrates the wake-up step with backward Euler.
func SolveTransient(p *TransientProblem) (*TransientResult, error) {
	if err := p.Validate(); err != nil {
		return nil, err
	}
	base := p.Base
	g := base.grid()
	if base.LoadDensity.Grid.NX() != g.NX() || base.LoadDensity.Grid.NY() != g.NY() {
		return nil, fmt.Errorf("pdn: load grid mismatch")
	}
	n := g.NumCells()
	// Grid conductances shared by every phase.
	gridCOO := num.NewCOO(n, n)
	loadFull := make([]float64, n)
	capPerNode := make([]float64, n)
	for j := 0; j < g.NY(); j++ {
		for i := 0; i < g.NX(); i++ {
			row := g.Index(i, j)
			if i < g.NX()-1 {
				cond := (g.Y.Widths[j] / g.X.CenterSpacing(i)) / base.SheetResistance
				col := g.Index(i+1, j)
				gridCOO.Add(row, row, cond)
				gridCOO.Add(col, col, cond)
				gridCOO.Add(row, col, -cond)
				gridCOO.Add(col, row, -cond)
			}
			if j < g.NY()-1 {
				cond := (g.X.Widths[i] / g.Y.CenterSpacing(j)) / base.SheetResistance
				col := g.Index(i, j+1)
				gridCOO.Add(row, row, cond)
				gridCOO.Add(col, col, cond)
				gridCOO.Add(row, col, -cond)
				gridCOO.Add(col, row, -cond)
			}
			area := g.CellArea(i, j)
			loadFull[row] = base.LoadDensity.At(i, j) * area
			capPerNode[row] = p.DecapPerArea * area
		}
	}
	siteNodes := make([]int, len(base.Sites))
	siteG := make([]float64, len(base.Sites))
	for k, s := range base.Sites {
		siteNodes[k] = g.Index(g.X.FindCell(s.X), g.Y.FindCell(s.Y))
		siteG[k] = 1 / s.Resistance
	}
	// DC solve helper with voltage-source sites at the given load scale.
	dcCOO := num.NewCOO(n, n)
	stampFrom := func(dst *num.COO, src *num.CSR) {
		for i := 0; i < src.Rows; i++ {
			for kk := src.RowPtr[i]; kk < src.RowPtr[i+1]; kk++ {
				dst.Add(i, src.ColIdx[kk], src.Val[kk])
			}
		}
	}
	gridCSR := gridCOO.ToCSR()
	stampFrom(dcCOO, gridCSR)
	srcB := make([]float64, n)
	for k, node := range siteNodes {
		dcCOO.Add(node, node, siteG[k])
		srcB[node] += siteG[k] * base.Supply
	}
	aDC := dcCOO.ToCSR()
	// One cached solver per matrix for the whole run: the preconditioner
	// (geometric multigrid at the default resolution) and Krylov
	// workspace are built once and shared by every solve against that
	// matrix (all stamps here are symmetric by construction).
	shape := num.GridShape{NX: g.NX(), NY: g.NY()}
	dcSolver := num.NewSparseSolverSymmetric(aDC, true, num.IterOptions{Tol: 1e-11, Shape: &shape})
	solveDC := func(scale float64) ([]float64, error) {
		b := make([]float64, n)
		for k := range b {
			b[k] = srcB[k] - scale*loadFull[k]
		}
		x := make([]float64, n)
		num.Fill(x, base.Supply)
		if _, err := dcSolver.Solve(b, x); err != nil {
			return nil, err
		}
		return x, nil
	}
	x, err := solveDC(p.StepFraction)
	if err != nil {
		return nil, fmt.Errorf("pdn: idle DC solve: %w", err)
	}
	settled, err := solveDC(1)
	if err != nil {
		return nil, fmt.Errorf("pdn: settled DC solve: %w", err)
	}
	// Frozen VRM currents during the lag window.
	iFrozen := make([]float64, n)
	for k, node := range siteNodes {
		iFrozen[node] += siteG[k] * (base.Supply - x[node])
	}
	// Phase matrices with capacitance.
	lagCOO := num.NewCOO(n, n)
	stampFrom(lagCOO, gridCSR)
	regCOO := num.NewCOO(n, n)
	stampFrom(regCOO, gridCSR)
	for k, node := range siteNodes {
		regCOO.Add(node, node, siteG[k])
	}
	for row, c := range capPerNode {
		lagCOO.Add(row, row, c/p.Dt)
		regCOO.Add(row, row, c/p.Dt)
	}
	lagSolver := num.NewSparseSolverSymmetric(lagCOO.ToCSR(), true, num.IterOptions{Tol: 1e-10, Shape: &shape})
	regSolver := num.NewSparseSolverSymmetric(regCOO.ToCSR(), true, num.IterOptions{Tol: 1e-10, Shape: &shape})

	res := &TransientResult{WorstV: math.Inf(1)}
	rhs := make([]float64, n)
	for step := 1; step <= p.Steps; step++ {
		t := float64(step) * p.Dt
		inLag := t <= p.VRMResponseTime
		for k := range rhs {
			rhs[k] = -loadFull[k] + capPerNode[k]/p.Dt*x[k]
			if inLag {
				rhs[k] += iFrozen[k]
			} else {
				rhs[k] += srcB[k]
			}
		}
		solver := regSolver
		if inLag {
			solver = lagSolver
		}
		if _, err := solver.Solve(rhs, x); err != nil {
			return nil, fmt.Errorf("pdn: transient step %d: %w", step, err)
		}
		minV := num.MinSlice(x)
		res.Times = append(res.Times, t)
		res.MinV = append(res.MinV, minV)
		if minV < res.WorstV {
			res.WorstV = minV
		}
	}
	res.SettledV = num.MinSlice(settled)
	res.DroopMV = 1000 * (res.SettledV - res.WorstV)
	if res.DroopMV < 0 {
		res.DroopMV = 0
	}
	return res, nil
}
