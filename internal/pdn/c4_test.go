package pdn

import (
	"math"
	"testing"

	"bright/internal/floorplan"
)

func TestC4SpecDefaults(t *testing.T) {
	c := DefaultC4()
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := c
	bad.Pitch = 0
	if err := bad.Validate(); err == nil {
		t.Fatal("zero pitch accepted")
	}
	bad = c
	bad.Derating = 0.5
	if err := bad.Validate(); err == nil {
		t.Fatal("derating < 1 accepted")
	}
}

func TestC4PadAccounting(t *testing.T) {
	c := DefaultC4()
	f := floorplan.Power7()
	// 400 um pitch over 26.55 x 21.34 mm: 66 x 53 = 3498 pads.
	if n := c.TotalPads(f); n != 3498 {
		t.Fatalf("total pads %d, want 3498", n)
	}
	// 2.2 A at 0.1 A/pad derated -> 22 power + 22 ground = 44.
	if n := c.PadsForRail(2.19); n != 44 {
		t.Fatalf("cache rail pads %d, want 44", n)
	}
	if c.PadsForRail(0) != 0 {
		t.Fatal("zero current must need zero pads")
	}
	// Monotone in current.
	if c.PadsForRail(10) <= c.PadsForRail(5) {
		t.Fatal("pad count not monotone")
	}
}

func TestC4BaselineE1(t *testing.T) {
	res, err := C4Baseline(DefaultC4(), 58.8)
	if err != nil {
		t.Fatal(err)
	}
	// Pad budget: the cache rail frees ~1-2% of the total pads, which
	// is a ~2% growth of the I/O pool in this accounting.
	if res.CacheRailPads < 20 || res.CacheRailPads > 120 {
		t.Fatalf("cache rail pads %d outside expectation", res.CacheRailPads)
	}
	if res.IOGainPct < 0.5 || res.IOGainPct > 10 {
		t.Fatalf("I/O gain %.2f%% outside expectation", res.IOGainPct)
	}
	// The conventional dense-pad baseline droops less than the
	// 14-site microfluidic feed (it has hundreds of feed points), but
	// both stay within the usable band.
	if res.ConventionalMinV <= res.MicrofluidicMinV {
		t.Fatalf("dense C4 feed (%.4f V) should droop less than 14 VRM sites (%.4f V)",
			res.ConventionalMinV, res.MicrofluidicMinV)
	}
	if res.MicrofluidicMinV < 0.93 {
		t.Fatalf("microfluidic droop %.4f V out of band", res.MicrofluidicMinV)
	}
	if res.FullChipPads <= res.CacheRailPads {
		t.Fatal("full-chip pad demand must dominate the cache rail's")
	}
	if math.IsNaN(res.FreedPadFractionPct) || res.FreedPadFractionPct <= 0 {
		t.Fatalf("freed fraction %g", res.FreedPadFractionPct)
	}
}

func TestC4BaselineErrors(t *testing.T) {
	bad := DefaultC4()
	bad.Pitch = -1
	if _, err := C4Baseline(bad, 58.8); err == nil {
		t.Fatal("invalid spec accepted")
	}
	// A chip current so large the pads cannot feed it.
	if _, err := C4Baseline(DefaultC4(), 1e4); err == nil {
		t.Fatal("impossible chip current accepted")
	}
}
