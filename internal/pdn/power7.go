package pdn

import (
	"fmt"

	"bright/internal/floorplan"
	"bright/internal/mesh"
	"bright/internal/units"
)

// Power7SheetResistance is the sheet resistance (ohm/square) assumed for
// the global on-chip power grid in the case study. The microfluidic
// supply enters from the channel layer above the die through TSVs, so
// the grid is carried on upper-metal planes; 0.35 ohm/sq reproduces the
// 0.96-0.995 V spread of the paper's Fig. 8 and is representative of a
// thick-upper-metal global grid.
const Power7SheetResistance = 0.35

// Power7TSVResistance is the series resistance (ohm) of one via site:
// a TSV bundle (~1 mohm) plus the VRM output impedance.
const Power7TSVResistance = 6e-3

// CacheViaSites places VRM via sites over the cache units of the
// floorplan: one site at the center of each L2 slice and a vertical
// chain of three sites per L3 bank (their aspect ratio is tall).
func CacheViaSites(f *floorplan.Floorplan, resistance float64) []ViaSite {
	var sites []ViaSite
	for _, u := range f.Units {
		r := u.Rect
		switch u.Kind {
		case floorplan.L2:
			sites = append(sites, ViaSite{
				X: r.X + r.W/2, Y: r.Y + r.H/2, Resistance: resistance,
			})
		case floorplan.L3:
			for k := 0; k < 3; k++ {
				sites = append(sites, ViaSite{
					X:          r.X + r.W/2,
					Y:          r.Y + r.H*(float64(k)+0.5)/3,
					Resistance: resistance,
				})
			}
		}
	}
	return sites
}

// SingleViaSite places one central via site (the ablation baseline for
// VRM placement).
func SingleViaSite(f *floorplan.Floorplan, resistance float64) []ViaSite {
	return []ViaSite{{X: f.Width / 2, Y: f.Height / 2, Resistance: resistance}}
}

// CacheLoad builds the sink current density field for the Fig. 8
// experiment: the paper's 1 W/cm2 cache density at the given supply
// voltage inside L2/L3 units, zero elsewhere (the rest of the chip is
// powered by conventional external supplies).
func CacheLoad(f *floorplan.Floorplan, g *mesh.Grid2D, supply float64) *mesh.Field2D {
	mask := f.RasterizeMask(g, floorplan.UnitKind.IsCache)
	density := units.WPerCM2ToWPerM2(1.0) / supply // A/m2
	for k, v := range mask.Data {
		mask.Data[k] = v * density
	}
	return mask
}

// Power7Problem assembles the complete Fig. 8 problem: POWER7+
// floorplan, cache-only loads at 1 V, cache via sites, default VRM.
func Power7Problem() (*Problem, VRM, error) {
	f := floorplan.Power7()
	if err := f.Validate(0); err != nil {
		return nil, VRM{}, fmt.Errorf("pdn: POWER7+ floorplan: %w", err)
	}
	vrm := DefaultVRM()
	p := &Problem{
		Floorplan:       f,
		SheetResistance: Power7SheetResistance,
		Supply:          vrm.Vout,
		Sites:           CacheViaSites(f, Power7TSVResistance+vrm.OutputResistance),
	}
	g := p.grid()
	p.LoadDensity = CacheLoad(f, g, vrm.Vout)
	return p, vrm, nil
}
