package bright_test

import (
	"math"
	"strings"
	"testing"

	"bright"
)

func TestPublicQuickstart(t *testing.T) {
	// The README quickstart must work as written.
	sys, err := bright.NewSystem(bright.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep, err := sys.Evaluate()
	if err != nil {
		t.Fatal(err)
	}
	if !rep.PowersCaches {
		t.Fatal("quickstart system fails its headline claim")
	}
	if !strings.Contains(rep.Summary(), "array:") {
		t.Fatal("summary malformed")
	}
}

func TestPublicCellAPI(t *testing.T) {
	c := bright.KjeangCell(60)
	curve, err := c.Polarize(10, 0.9)
	if err != nil {
		t.Fatal(err)
	}
	if !curve.IsMonotoneDecreasing() {
		t.Fatal("public cell curve not monotone")
	}
	// Switch solver paths through the public constants.
	c.Path = bright.PathFVM
	op, err := c.VoltageAtCurrent(0.4 * c.LimitingCurrent())
	if err != nil {
		t.Fatal(err)
	}
	c.Path = bright.PathCorrelation
	op2, err := c.VoltageAtCurrent(0.4 * c.LimitingCurrent())
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op.Voltage-op2.Voltage)/op2.Voltage > 0.1 {
		t.Fatalf("paths disagree publicly: %.3f vs %.3f", op.Voltage, op2.Voltage)
	}
}

func TestPublicArrayAPI(t *testing.T) {
	a := bright.Power7Array()
	op, err := a.CurrentAtVoltage(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(op.Current-6.0) > 0.9 {
		t.Fatalf("public array I(1V) = %.2f", op.Current)
	}
	hot := bright.Power7ArrayAt(676, bright.CtoK(37))
	opHot, err := hot.CurrentAtVoltage(1.0)
	if err != nil {
		t.Fatal(err)
	}
	if opHot.Current <= op.Current {
		t.Fatal("public hot array not hotter")
	}
}

func TestPublicThermalAPI(t *testing.T) {
	sol, err := bright.SolveThermal(676, 27, 0)
	if err != nil {
		t.Fatal(err)
	}
	peak := bright.KtoC(sol.PeakT)
	if peak < 36 || peak > 44 {
		t.Fatalf("public thermal peak %.1f C", peak)
	}
}

func TestPublicCoSimAPI(t *testing.T) {
	g, err := bright.CouplingGain(bright.CoSimConfig{
		TotalFlowMLMin: 676, InletTempC: 27, TerminalVoltage: 1.0,
	})
	if err != nil {
		t.Fatal(err)
	}
	if g.CurrentGain <= 0 || g.CurrentGain > 0.05 {
		t.Fatalf("public coupling gain %.2f%%", 100*g.CurrentGain)
	}
	res, err := bright.RunCoSim(bright.CoSimConfig{
		TotalFlowMLMin: 676, InletTempC: 27, TerminalVoltage: 1.0,
	})
	if err != nil || !res.Converged {
		t.Fatalf("public cosim: converged=%v err=%v", res != nil && res.Converged, err)
	}
}

func TestTemperatureHelpers(t *testing.T) {
	if bright.CtoK(27) != 300.15 || math.Abs(bright.KtoC(300.15)-27) > 1e-12 {
		t.Fatal("temperature helpers broken")
	}
}
