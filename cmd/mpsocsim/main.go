// Command mpsocsim evaluates the integrated microfluidically powered
// and cooled POWER7+ system at one operating point and prints the
// headline report plus ASCII voltage/thermal maps.
//
// Usage:
//
//	mpsocsim [-flow ML_MIN] [-inlet C] [-supply V] [-load FRAC] [-maps]
package main

import (
	"flag"
	"fmt"
	"log"

	"bright"
	"bright/internal/units"
	"bright/internal/vis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("mpsocsim: ")
	flow := flag.Float64("flow", 676, "total electrolyte flow in ml/min")
	inlet := flag.Float64("inlet", 27, "coolant inlet temperature in C")
	supply := flag.Float64("supply", 1.0, "cache rail voltage in V")
	load := flag.Float64("load", 1.0, "chip load fraction (1 = full load)")
	maps := flag.Bool("maps", true, "print ASCII voltage and thermal maps")
	flag.Parse()

	cfg := bright.DefaultConfig()
	cfg.FlowMLMin = *flow
	cfg.InletTempC = *inlet
	cfg.SupplyVoltage = *supply
	cfg.ChipLoad = *load

	sys, err := bright.NewSystem(cfg)
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Summary())
	if !*maps {
		return
	}
	fmt.Println()
	fmt.Print(vis.ASCIIHeatmap(rep.Grid.V, vis.HeatmapOptions{
		Title: "power-grid voltage (dark = droop)", Unit: "V", FlipY: true,
	}))
	fmt.Println()
	tC := rep.Thermal.ActiveT
	for k := range tC.Data {
		tC.Data[k] = units.KtoC(tC.Data[k])
	}
	fmt.Print(vis.ASCIIHeatmap(tC, vis.HeatmapOptions{
		Title: "die temperature (bright = hot)", Unit: "C", FlipY: true,
	}))
}
