// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report. It reads one or more benchmark output
// files (or stdin when none are given), parses every benchmark result
// line, and emits a single JSON document with per-benchmark ns/op,
// B/op, allocs/op and any custom metrics, plus speedup pairs for
// benchmarks that expose /serial and /parallel sub-benchmarks.
//
// Usage:
//
//	go test -bench . -benchmem ./internal/num > num.txt
//	benchjson -o BENCH.json num.txt [more.txt ...]
//
// The report records the machine context (Go version, GOMAXPROCS, CPU
// line from the benchmark header) so numbers from different boxes are
// never compared blind.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Package is the pkg: line in effect when the result appeared.
	Package    string  `json:"package,omitempty"`
	Iterations int64   `json:"iterations"`
	NsOp       float64 `json:"ns_op"`
	// BytesOp and AllocsOp are -1 when the run lacked -benchmem.
	BytesOp  float64 `json:"bytes_op"`
	AllocsOp float64 `json:"allocs_op"`
	// Metrics holds any further "value unit" pairs (e.g. MB/s, custom
	// b.ReportMetric units).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Speedup pairs a benchmark's /serial and /parallel variants.
type Speedup struct {
	Name       string  `json:"name"`
	SerialNs   float64 `json:"serial_ns_op"`
	ParallelNs float64 `json:"parallel_ns_op"`
	// Speedup = serial / parallel: > 1 means the parallel path wins.
	Speedup float64 `json:"speedup"`
}

// Report is the emitted document.
type Report struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// Cores is GOMAXPROCS on the generating machine — read it before
	// trusting any /parallel number.
	Cores      int         `json:"cores"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Speedups   []Speedup   `json:"speedups,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	flag.Parse()

	rep := &Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Cores:     runtime.GOMAXPROCS(0),
	}
	if flag.NArg() == 0 {
		if err := parse(os.Stdin, rep); err != nil {
			fatal(err)
		}
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		err = parse(f, rep)
		//lint:ignore errignore read-side close; a parse failure is already fatal below
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
	}
	rep.Speedups = speedups(rep.Benchmarks)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(enc); err != nil {
			fatal(err)
		}
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parse consumes one `go test -bench` output stream, appending results
// to the report and capturing the cpu/pkg header lines.
func parse(r io.Reader, rep *Report) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		case strings.HasPrefix(line, "cpu: "):
			if rep.CPU == "" {
				rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
			}
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, ok := parseLine(line)
		if !ok {
			continue
		}
		b.Package = pkg
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	return sc.Err()
}

// parseLine parses "BenchmarkName-8  123  456 ns/op  0 B/op  0 allocs/op".
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix from the last path segment only.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, BytesOp: -1, AllocsOp: -1}
	// The remainder is "value unit" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsOp = v
		case "B/op":
			b.BytesOp = v
		case "allocs/op":
			b.AllocsOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, b.NsOp > 0
}

// speedups pairs Foo/serial with Foo/parallel results.
func speedups(benches []Benchmark) []Speedup {
	serial := map[string]float64{}
	parallel := map[string]float64{}
	for _, b := range benches {
		if base, ok := strings.CutSuffix(b.Name, "/serial"); ok {
			serial[base] = b.NsOp
		} else if base, ok := strings.CutSuffix(b.Name, "/parallel"); ok {
			parallel[base] = b.NsOp
		}
	}
	var out []Speedup
	for name, s := range serial {
		p, ok := parallel[name]
		if !ok || p <= 0 {
			continue
		}
		out = append(out, Speedup{Name: name, SerialNs: s, ParallelNs: p, Speedup: s / p})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}
