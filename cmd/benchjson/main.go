// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report. It reads one or more benchmark output
// files (or stdin when none are given), parses every benchmark result
// line, and emits a single JSON document with per-benchmark ns/op,
// B/op, allocs/op and any custom metrics, plus speedup pairs for
// benchmarks that expose paired sub-benchmarks: /serial vs /parallel
// (kernel threading) and /jacobi vs /mg (preconditioner).
//
// Usage:
//
//	go test -bench . -benchmem ./internal/num > num.txt
//	benchjson -o BENCH.json [-min-mg-speedup 1.0] num.txt [more.txt ...]
//
// -min-mg-speedup turns the report into a regression gate: after
// writing the output it exits nonzero if any jacobi-vs-mg pair falls
// below the threshold, or if no such pair was found at all (a silently
// skipped benchmark must not pass the gate). `make bench-compare` runs
// it at 1.0 so multigrid can never quietly regress below the Jacobi
// baseline on the reference grids.
//
// The report records the machine context (Go version, GOMAXPROCS, CPU
// line from the benchmark header) so numbers from different boxes are
// never compared blind.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Package is the pkg: line in effect when the result appeared.
	Package    string  `json:"package,omitempty"`
	Iterations int64   `json:"iterations"`
	NsOp       float64 `json:"ns_op"`
	// BytesOp and AllocsOp are -1 when the run lacked -benchmem.
	BytesOp  float64 `json:"bytes_op"`
	AllocsOp float64 `json:"allocs_op"`
	// Metrics holds any further "value unit" pairs (e.g. MB/s, custom
	// b.ReportMetric units).
	Metrics map[string]float64 `json:"metrics,omitempty"`
}

// Speedup pairs a benchmark's baseline and optimized variants. Kind
// names the pairing: "parallel" for /serial vs /parallel, "mg" for
// /jacobi vs /mg.
type Speedup struct {
	Name       string  `json:"name"`
	Kind       string  `json:"kind"`
	BaselineNs float64 `json:"baseline_ns_op"`
	VariantNs  float64 `json:"variant_ns_op"`
	// Speedup = baseline / variant: > 1 means the optimized path wins.
	Speedup float64 `json:"speedup"`
}

// FrameRate surfaces a streaming-session stepping benchmark's frames/s
// metric (b.ReportMetric in internal/stream) as a first-class report
// row, so the digital-twin frame rate is trackable across PRs without
// digging through the generic metrics maps.
type FrameRate struct {
	Name         string  `json:"name"`
	FramesPerSec float64 `json:"frames_per_sec"`
}

// suffixPairs lists the recognized baseline/variant sub-benchmark
// suffix conventions.
var suffixPairs = []struct{ kind, baseline, variant string }{
	{"parallel", "/serial", "/parallel"},
	{"mg", "/jacobi", "/mg"},
}

// Report is the emitted document.
type Report struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// Cores is GOMAXPROCS on the generating machine — read it before
	// trusting any /parallel number.
	Cores      int         `json:"cores"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Speedups   []Speedup   `json:"speedups,omitempty"`
	// FrameRates lists every benchmark reporting a frames/s metric
	// (streaming-session stepping throughput).
	FrameRates []FrameRate `json:"frame_rates,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	minMG := flag.Float64("min-mg-speedup", 0,
		"exit nonzero if any jacobi-vs-mg pair's speedup falls below this, or none exists (0 disables)")
	flag.Parse()

	rep := &Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Cores:     runtime.GOMAXPROCS(0),
	}
	if flag.NArg() == 0 {
		if err := parse(os.Stdin, rep); err != nil {
			fatal(err)
		}
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		err = parse(f, rep)
		//lint:ignore errignore read-side close; a parse failure is already fatal below
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
	}
	rep.Speedups = speedups(rep.Benchmarks)
	rep.FrameRates = frameRates(rep.Benchmarks)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(enc); err != nil {
			fatal(err)
		}
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	// The gate runs after the report is written, so a regression still
	// leaves the numbers on disk for inspection.
	if *minMG > 0 {
		enforceMG(rep.Speedups, *minMG)
	}
}

// enforceMG fails the process when the multigrid pairs regress below
// the floor — or are missing entirely, which would otherwise let a
// skipped benchmark pass the gate.
func enforceMG(sp []Speedup, floor float64) {
	found, bad := 0, 0
	for _, s := range sp {
		if s.Kind != "mg" {
			continue
		}
		found++
		if s.Speedup < floor {
			fmt.Fprintf(os.Stderr, "benchjson: %s mg speedup %.2fx below required %.2fx\n",
				s.Name, s.Speedup, floor)
			bad++
		}
	}
	if found == 0 {
		fatal(fmt.Errorf("-min-mg-speedup %.2f set but no jacobi-vs-mg pairs found", floor))
	}
	if bad > 0 {
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d mg pair(s) at or above %.2fx\n", found, floor)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parse consumes one `go test -bench` output stream, appending results
// to the report and capturing the cpu/pkg header lines.
func parse(r io.Reader, rep *Report) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		case strings.HasPrefix(line, "cpu: "):
			if rep.CPU == "" {
				rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
			}
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, ok := parseLine(line)
		if !ok {
			continue
		}
		b.Package = pkg
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	return sc.Err()
}

// parseLine parses "BenchmarkName-8  123  456 ns/op  0 B/op  0 allocs/op".
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix from the last path segment only.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, BytesOp: -1, AllocsOp: -1}
	// The remainder is "value unit" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsOp = v
		case "B/op":
			b.BytesOp = v
		case "allocs/op":
			b.AllocsOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, b.NsOp > 0
}

// frameRates extracts the frames/s rows, in benchmark order.
func frameRates(benches []Benchmark) []FrameRate {
	var out []FrameRate
	for _, b := range benches {
		if fps, ok := b.Metrics["frames/s"]; ok && fps > 0 {
			out = append(out, FrameRate{Name: b.Name, FramesPerSec: fps})
		}
	}
	return out
}

// speedups pairs every recognized baseline/variant sub-benchmark couple
// (Foo/serial with Foo/parallel, Foo/jacobi with Foo/mg).
func speedups(benches []Benchmark) []Speedup {
	ns := map[string]float64{}
	for _, b := range benches {
		ns[b.Name] = b.NsOp
	}
	var out []Speedup
	seen := map[string]bool{}
	for _, b := range benches {
		for _, p := range suffixPairs {
			base, ok := strings.CutSuffix(b.Name, p.baseline)
			if !ok || seen[base+"\x00"+p.kind] {
				continue
			}
			v, ok := ns[base+p.variant]
			if !ok || v <= 0 {
				continue
			}
			seen[base+"\x00"+p.kind] = true
			out = append(out, Speedup{Name: base, Kind: p.kind, BaselineNs: b.NsOp, VariantNs: v, Speedup: b.NsOp / v})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}
