// Command benchjson converts `go test -bench` text output into a
// machine-readable JSON report. It reads one or more benchmark output
// files (or stdin when none are given), parses every benchmark result
// line, and emits a single JSON document with per-benchmark ns/op,
// B/op, allocs/op and any custom metrics, plus speedup pairs for
// benchmarks that expose paired sub-benchmarks: /serial vs /parallel
// (kernel threading), /jacobi vs /mg (preconditioner), /f64 vs /f32
// (mixed-precision V-cycles), /jacobi-smooth vs /cheby (smoother),
// /seq vs /block (multi-RHS CG) and /csr vs /sell plus /csr32 vs
// /sell32 (SELL-C-σ SpMV layout).
//
// Usage:
//
//	go test -bench . -benchmem ./internal/num > num.txt
//	benchjson -o BENCH.json [-min-mg-speedup 1.0] [-min-speedup 1.0] num.txt [more.txt ...]
//
// Repeated rows of one benchmark (`go test -count N`) collapse into a
// single row carrying the per-column median, with the sample count
// recorded — on shared or frequency-scaled boxes the median of a few
// repetitions is far more stable than any single run, so gated ratios
// do not flake on CPU drift.
//
// The floors turn the report into a regression gate: after writing the
// output, -min-mg-speedup exits nonzero if any jacobi-vs-mg pair falls
// below the threshold, and -min-speedup does the same for the f32,
// cheby, blockcg and sell pairings — each gated kind must also be
// present at all (a silently skipped benchmark must not pass the gate).
// `make bench-compare` runs both at 1.0 so no optimized solver path can
// quietly regress below its baseline on the reference grids.
//
// Most pairs compare wall clock (ns/op). The blockcg couple instead
// compares the rows/op metric when both sides report it — CSR rows
// traversed per sweep chain, the deterministic currency of multi-RHS
// amortization — so that gate measures the algorithmic saving exactly
// rather than a machine-dependent timing; each speedup row records
// which unit it was computed on.
//
// The report records the machine context (Go version, GOMAXPROCS, CPU
// line from the benchmark header) so numbers from different boxes are
// never compared blind.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
)

// Benchmark is one parsed result line.
type Benchmark struct {
	// Name is the benchmark name with the -GOMAXPROCS suffix stripped.
	Name string `json:"name"`
	// Package is the pkg: line in effect when the result appeared.
	Package    string  `json:"package,omitempty"`
	Iterations int64   `json:"iterations"`
	NsOp       float64 `json:"ns_op"`
	// BytesOp and AllocsOp are -1 when the run lacked -benchmem.
	BytesOp  float64 `json:"bytes_op"`
	AllocsOp float64 `json:"allocs_op"`
	// Metrics holds any further "value unit" pairs (e.g. MB/s, custom
	// b.ReportMetric units).
	Metrics map[string]float64 `json:"metrics,omitempty"`
	// Samples is the repetition count this row is the median of, when
	// the input held the benchmark more than once (`go test -count N`);
	// 0 means a single run.
	Samples int `json:"samples,omitempty"`
}

// Speedup pairs a benchmark's baseline and optimized variants. Kind
// names the pairing: "parallel" for /serial vs /parallel, "mg" for
// /jacobi vs /mg.
type Speedup struct {
	Name string `json:"name"`
	Kind string `json:"kind"`
	// Unit is the column the pair is compared on: "ns/op" for wall
	// clock (the default), or a custom metric such as "rows/op" for the
	// blockcg kind.
	Unit     string  `json:"unit"`
	Baseline float64 `json:"baseline"`
	Variant  float64 `json:"variant"`
	// Speedup = baseline / variant: > 1 means the optimized path wins.
	Speedup float64 `json:"speedup"`
}

// FrameRate surfaces a streaming-session stepping benchmark's frames/s
// metric (b.ReportMetric in internal/stream) as a first-class report
// row, so the digital-twin frame rate is trackable across PRs without
// digging through the generic metrics maps.
type FrameRate struct {
	Name         string  `json:"name"`
	FramesPerSec float64 `json:"frames_per_sec"`
}

// suffixPairs lists the recognized baseline/variant sub-benchmark
// suffix conventions.
var suffixPairs = []struct{ kind, baseline, variant string }{
	{"parallel", "/serial", "/parallel"},
	{"mg", "/jacobi", "/mg"},
	{"f32", "/f64", "/f32"},
	{"cheby", "/jacobi-smooth", "/cheby"},
	{"blockcg", "/seq", "/block"},
	{"sell", "/csr", "/sell"},
	{"sell32", "/csr32", "/sell32"},
}

// gatedKinds are the pairings -min-speedup enforces: each must appear at
// least once and every pair must meet the floor. They cover the four
// solver-optimization axes — mixed-precision V-cycles, Chebyshev
// smoothing, block multi-RHS CG and the SELL-C-σ SpMV layout. The
// float32 sell32 pairing stays ungated: both sides already run the
// narrow path, so the layout delta there is informational.
var gatedKinds = []string{"f32", "cheby", "blockcg", "sell"}

// Report is the emitted document.
type Report struct {
	GoVersion string `json:"go_version"`
	GOOS      string `json:"goos"`
	GOARCH    string `json:"goarch"`
	// Cores is GOMAXPROCS on the generating machine — read it before
	// trusting any /parallel number.
	Cores      int         `json:"cores"`
	CPU        string      `json:"cpu,omitempty"`
	Benchmarks []Benchmark `json:"benchmarks"`
	Speedups   []Speedup   `json:"speedups,omitempty"`
	// FrameRates lists every benchmark reporting a frames/s metric
	// (streaming-session stepping throughput).
	FrameRates []FrameRate `json:"frame_rates,omitempty"`
}

func main() {
	out := flag.String("o", "", "output file (default stdout)")
	minMG := flag.Float64("min-mg-speedup", 0,
		"exit nonzero if any jacobi-vs-mg pair's speedup falls below this, or none exists (0 disables)")
	minSpeedup := flag.Float64("min-speedup", 0,
		"exit nonzero unless every f32, cheby and blockcg pair exists and meets this floor (0 disables)")
	flag.Parse()

	rep := &Report{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		Cores:     runtime.GOMAXPROCS(0),
	}
	if flag.NArg() == 0 {
		if err := parse(os.Stdin, rep); err != nil {
			fatal(err)
		}
	}
	for _, path := range flag.Args() {
		f, err := os.Open(path)
		if err != nil {
			fatal(err)
		}
		err = parse(f, rep)
		//lint:ignore errignore read-side close; a parse failure is already fatal below
		f.Close()
		if err != nil {
			fatal(fmt.Errorf("%s: %w", path, err))
		}
	}
	rep.Benchmarks = collapse(rep.Benchmarks)
	rep.Speedups = speedups(rep.Benchmarks)
	rep.FrameRates = frameRates(rep.Benchmarks)

	enc, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		fatal(err)
	}
	enc = append(enc, '\n')
	if *out == "" {
		if _, err := os.Stdout.Write(enc); err != nil {
			fatal(err)
		}
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fatal(err)
	}
	// The gate runs after the report is written, so a regression still
	// leaves the numbers on disk for inspection.
	if *minMG > 0 {
		enforceKind(rep.Speedups, "mg", *minMG)
	}
	if *minSpeedup > 0 {
		for _, kind := range gatedKinds {
			enforceKind(rep.Speedups, kind, *minSpeedup)
		}
	}
}

// enforceKind fails the process when a pairing kind's rows regress below
// the floor — or are missing entirely, which would otherwise let a
// skipped benchmark pass the gate.
func enforceKind(sp []Speedup, kind string, floor float64) {
	found, bad := 0, 0
	for _, s := range sp {
		if s.Kind != kind {
			continue
		}
		found++
		if s.Speedup < floor {
			fmt.Fprintf(os.Stderr, "benchjson: %s %s speedup %.2fx below required %.2fx\n",
				s.Name, kind, s.Speedup, floor)
			bad++
		}
	}
	if found == 0 {
		fatal(fmt.Errorf("speedup floor %.2f set for kind %q but no such pairs found", floor, kind))
	}
	if bad > 0 {
		os.Exit(1)
	}
	fmt.Fprintf(os.Stderr, "benchjson: %d %s pair(s) at or above %.2fx\n", found, kind, floor)
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "benchjson:", err)
	os.Exit(1)
}

// parse consumes one `go test -bench` output stream, appending results
// to the report and capturing the cpu/pkg header lines.
func parse(r io.Reader, rep *Report) error {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 0, 1<<16), 1<<20)
	pkg := ""
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "pkg: "):
			pkg = strings.TrimSpace(strings.TrimPrefix(line, "pkg: "))
			continue
		case strings.HasPrefix(line, "cpu: "):
			if rep.CPU == "" {
				rep.CPU = strings.TrimSpace(strings.TrimPrefix(line, "cpu: "))
			}
			continue
		case !strings.HasPrefix(line, "Benchmark"):
			continue
		}
		b, ok := parseLine(line)
		if !ok {
			continue
		}
		b.Package = pkg
		rep.Benchmarks = append(rep.Benchmarks, b)
	}
	return sc.Err()
}

// parseLine parses "BenchmarkName-8  123  456 ns/op  0 B/op  0 allocs/op".
func parseLine(line string) (Benchmark, bool) {
	fields := strings.Fields(line)
	if len(fields) < 4 {
		return Benchmark{}, false
	}
	name := fields[0]
	// Strip the -GOMAXPROCS suffix from the last path segment only.
	if i := strings.LastIndexByte(name, '-'); i > 0 {
		if _, err := strconv.Atoi(name[i+1:]); err == nil {
			name = name[:i]
		}
	}
	iters, err := strconv.ParseInt(fields[1], 10, 64)
	if err != nil {
		return Benchmark{}, false
	}
	b := Benchmark{Name: name, Iterations: iters, BytesOp: -1, AllocsOp: -1}
	// The remainder is "value unit" pairs.
	for i := 2; i+1 < len(fields); i += 2 {
		v, err := strconv.ParseFloat(fields[i], 64)
		if err != nil {
			return Benchmark{}, false
		}
		switch unit := fields[i+1]; unit {
		case "ns/op":
			b.NsOp = v
		case "B/op":
			b.BytesOp = v
		case "allocs/op":
			b.AllocsOp = v
		default:
			if b.Metrics == nil {
				b.Metrics = map[string]float64{}
			}
			b.Metrics[unit] = v
		}
	}
	return b, b.NsOp > 0
}

// median returns the middle value of vs (mean of the middle two for
// even counts). vs is sorted in place.
func median(vs []float64) float64 {
	sort.Float64s(vs)
	n := len(vs)
	if n == 0 {
		return 0
	}
	if n%2 == 1 {
		return vs[n/2]
	}
	return (vs[n/2-1] + vs[n/2]) / 2
}

// collapse merges repeated rows of one benchmark — `go test -count N`
// emits the full result line N times — into a single row holding the
// per-column median, first-appearance order preserved. Medians are
// taken column-wise (ns/op, B/op, allocs/op, every custom metric), so
// one repetition hit by a CPU-frequency dip or a noisy neighbor cannot
// drag a gated ratio under its floor.
func collapse(benches []Benchmark) []Benchmark {
	type key struct{ pkg, name string }
	var order []key
	groups := map[key][]Benchmark{}
	for _, b := range benches {
		k := key{b.Package, b.Name}
		if groups[k] == nil {
			order = append(order, k)
		}
		groups[k] = append(groups[k], b)
	}
	pick := func(g []Benchmark, f func(Benchmark) float64) float64 {
		vs := make([]float64, len(g))
		for i, b := range g {
			vs[i] = f(b)
		}
		return median(vs)
	}
	out := make([]Benchmark, 0, len(order))
	for _, k := range order {
		g := groups[k]
		m := g[0]
		if len(g) > 1 {
			m.Samples = len(g)
			m.Iterations = int64(pick(g, func(b Benchmark) float64 { return float64(b.Iterations) }))
			m.NsOp = pick(g, func(b Benchmark) float64 { return b.NsOp })
			m.BytesOp = pick(g, func(b Benchmark) float64 { return b.BytesOp })
			m.AllocsOp = pick(g, func(b Benchmark) float64 { return b.AllocsOp })
			units := map[string]bool{}
			for _, b := range g {
				for u := range b.Metrics {
					units[u] = true
				}
			}
			if len(units) > 0 {
				m.Metrics = map[string]float64{}
				for u := range units {
					m.Metrics[u] = pick(g, func(b Benchmark) float64 { return b.Metrics[u] })
				}
			}
		}
		out = append(out, m)
	}
	return out
}

// frameRates extracts the frames/s rows, in benchmark order.
func frameRates(benches []Benchmark) []FrameRate {
	var out []FrameRate
	for _, b := range benches {
		if fps, ok := b.Metrics["frames/s"]; ok && fps > 0 {
			out = append(out, FrameRate{Name: b.Name, FramesPerSec: fps})
		}
	}
	return out
}

// pairMetric picks the column a pairing is compared on. The blockcg
// couple compares rows/op when both sides report it — the deterministic
// traversal-amortization count — and everything else (including a
// blockcg pair without the metric) compares wall clock.
func pairMetric(kind string, base, variant Benchmark) (unit string, bv, vv float64) {
	if kind == "blockcg" {
		br, okB := base.Metrics["rows/op"]
		vr, okV := variant.Metrics["rows/op"]
		if okB && okV && br > 0 && vr > 0 {
			return "rows/op", br, vr
		}
	}
	return "ns/op", base.NsOp, variant.NsOp
}

// speedups pairs every recognized baseline/variant sub-benchmark couple
// (Foo/serial with Foo/parallel, Foo/jacobi with Foo/mg).
func speedups(benches []Benchmark) []Speedup {
	byName := map[string]Benchmark{}
	for _, b := range benches {
		byName[b.Name] = b
	}
	var out []Speedup
	seen := map[string]bool{}
	for _, b := range benches {
		for _, p := range suffixPairs {
			base, ok := strings.CutSuffix(b.Name, p.baseline)
			if !ok || seen[base+"\x00"+p.kind] {
				continue
			}
			v, ok := byName[base+p.variant]
			if !ok {
				continue
			}
			unit, bv, vv := pairMetric(p.kind, b, v)
			if bv <= 0 || vv <= 0 {
				continue
			}
			seen[base+"\x00"+p.kind] = true
			out = append(out, Speedup{Name: base, Kind: p.kind, Unit: unit, Baseline: bv, Variant: vv, Speedup: bv / vv})
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Name != out[j].Name {
			return out[i].Name < out[j].Name
		}
		return out[i].Kind < out[j].Kind
	})
	return out
}
