// Command repro regenerates every table and figure of the paper and
// writes them as CSV files (plus ASCII previews on stdout) into an
// output directory.
//
// Usage:
//
//	repro [-out DIR] [-only fig3|fig7|fig8|fig9|scalars|ablations]
//
// With no -only flag every experiment runs (the scalar co-simulations
// take a couple of minutes in total on a laptop).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"path/filepath"

	"bright/internal/experiments"
	"bright/internal/units"
	"bright/internal/vis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("repro: ")
	outDir := flag.String("out", "out", "output directory for CSV files")
	only := flag.String("only", "", "run a single experiment: fig3|fig7|fig8|fig9|scalars|ablations|extensions")
	flag.Parse()

	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		log.Fatal(err)
	}
	run := func(name string, f func(string) error) {
		if *only != "" && *only != name {
			return
		}
		fmt.Printf("==> %s\n", name)
		if err := f(*outDir); err != nil {
			log.Fatalf("%s: %v", name, err)
		}
	}
	run("tables", runTables)
	run("fig3", runFig3)
	run("fig7", runFig7)
	run("fig8", runFig8)
	run("fig9", runFig9)
	run("scalars", runScalars)
	run("ablations", runAblations)
	run("extensions", runExtensions)
	run("extensions2", runExtensions2)
	run("extensions3", runExtensions3)
	run("extensions4", runExtensions4)
	run("extensions5", runExtensions5)
	run("extensions6", runExtensions6)
	run("extensions7", runExtensions7)
	run("extensions8", runExtensions8)
	run("extensions9", runExtensions9)
	run("extensions10", runExtensions10)
	fmt.Printf("done; CSV output in %s\n", *outDir)
}

func writeCSV(dir, name string, write func(f *os.File) error) error {
	path := filepath.Join(dir, name)
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := write(f); err != nil {
		//lint:ignore errignore the write error takes precedence over cleanup-close
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	fmt.Printf("    wrote %s\n", path)
	return nil
}

func runFig3(dir string) error {
	curves, err := experiments.Fig3(12)
	if err != nil {
		return err
	}
	fmt.Println("    Fig. 3 — validation polarization curves (V vs mA/cm2)")
	for _, c := range curves {
		fmt.Printf("    %6.1f uL/min: iL=%5.1f mA/cm2  err(corr)=%4.1f%%  err(fvm)=%4.1f%%  paths=%4.1f%%\n",
			c.FlowULMin, c.LimitingCurrentMACM2,
			100*c.MaxErrModel, 100*c.MaxErrFVM, 100*c.MaxErrPaths)
		name := fmt.Sprintf("fig3_%guLmin.csv", c.FlowULMin)
		cc := c
		if err := writeCSV(dir, name, func(f *os.File) error {
			return vis.WriteCSVSeries(f,
				[]string{"i_mA_cm2", "V_model_corr", "V_model_fvm", "V_reference"},
				cc.Model.X, cc.Model.Y, cc.ModelFVM.Y, cc.Reference.Y)
		}); err != nil {
			return err
		}
	}
	return nil
}

func runFig7(dir string) error {
	res, err := experiments.Fig7(30)
	if err != nil {
		return err
	}
	fmt.Printf("    Fig. 7 — array V-I: OCV=%.3f V, I(1.0 V)=%.2f A (paper: ~1.65 V, 6 A), P(1V)=%.2f W\n",
		res.OCV, res.CurrentAt1V, res.PowerAt1V)
	return writeCSV(dir, "fig7_array_vi.csv", func(f *os.File) error {
		return vis.WriteCSVSeries(f, []string{"I_A", "V"}, res.Curve.X, res.Curve.Y)
	})
}

func runFig8(dir string) error {
	res, err := experiments.Fig8()
	if err != nil {
		return err
	}
	fmt.Printf("    Fig. 8 — grid voltage map: min(cache)=%.4f V, max=%.4f V, load=%.2f A (paper: 0.96-0.995 V)\n",
		res.MinCacheV, res.MaxV, res.TotalLoadA)
	fmt.Print(vis.ASCIIHeatmap(res.Solution.V, vis.HeatmapOptions{
		Title: "    cache-rail voltage (dark = droop)", Unit: "V", FlipY: true,
	}))
	return writeCSV(dir, "fig8_voltage_map.csv", func(f *os.File) error {
		return vis.WriteCSVMatrix(f, res.Solution.V, 1e3)
	})
}

func runFig9(dir string) error {
	res, err := experiments.Fig9(676, 27)
	if err != nil {
		return err
	}
	fmt.Printf("    Fig. 9 — thermal map: peak=%.1f C, outlet=%.1f C, chip power=%.1f W (paper: 41 C peak)\n",
		res.PeakC, res.OutletC, res.TotalPowerW)
	// Render in Celsius for the preview.
	tC := res.Solution.ActiveT
	for k := range tC.Data {
		tC.Data[k] = units.KtoC(tC.Data[k])
	}
	fmt.Print(vis.ASCIIHeatmap(tC, vis.HeatmapOptions{
		Title: "    active-plane temperature (bright = hot)", Unit: "C", FlipY: true,
	}))
	return writeCSV(dir, "fig9_thermal_map.csv", func(f *os.File) error {
		return vis.WriteCSVMatrix(f, tC, 1e3)
	})
}

func runScalars(dir string) error {
	s1, err := experiments.S1CachePower()
	if err != nil {
		return err
	}
	fmt.Printf("    S1 — cache power: array %.2f A / %.2f W at 1 V, %.2f W after VRM; caches need %.2f W (%.2f cm2) -> powered=%v\n",
		s1.ArrayCurrentA, s1.ArrayPowerW, s1.DeliveredW, s1.CacheDemandW, s1.CacheAreaCM2, s1.Powered)
	s2, err := experiments.S2Hydraulics()
	if err != nil {
		return err
	}
	fmt.Printf("    S2 — hydraulics: v=%.2f m/s, grad=%.3f bar/cm (paper %.1f), pump=%.2f W (paper %.1f)\n",
		s2.MeanVelocityMS, s2.GradientBarPerCM, s2.PaperGradientBarPerCM, s2.PumpPowerW, s2.PaperPumpPowerW)
	s3, err := experiments.S3TempSensitivityNominal()
	if err != nil {
		return err
	}
	fmt.Printf("    S3 — nominal coupling gain: +%.2f%% current at 1 V (paper: <=4%%), cell T=%.1f C\n",
		s3.CurrentGainPct, s3.CellTempC)
	s4, err := experiments.S4HotOperation()
	if err != nil {
		return err
	}
	fmt.Printf("    S4 — hot operation: low-flow gain +%.1f%% (cell %.1f C), hot-inlet gain +%.1f%% (paper: up to %.0f%%)\n",
		s4.LowFlowGainPct, s4.LowFlowCellTempC, s4.HotInletGainPct, s4.PaperGainPct)
	return writeCSV(dir, "scalars.csv", func(f *os.File) error {
		return vis.WriteCSVSeries(f,
			[]string{"array_A_at_1V", "delivered_W", "pump_W", "s3_gain_pct", "s4_lowflow_gain_pct", "s4_hotinlet_gain_pct"},
			[]float64{s1.ArrayCurrentA}, []float64{s1.DeliveredW}, []float64{s2.PumpPowerW},
			[]float64{s3.CurrentGainPct}, []float64{s4.LowFlowGainPct}, []float64{s4.HotInletGainPct})
	})
}

func runAblations(dir string) error {
	sp, err := experiments.AblationSolverPath()
	if err != nil {
		return err
	}
	fmt.Println("    Ablation — solver paths (corr vs fvm):")
	var x1, y1, y2 []float64
	for _, r := range sp {
		fmt.Printf("      q=%5.1f uL/min frac=%.2f: corr %.3f V, fvm %.3f V (%.1f%%)\n",
			r.FlowULMin, r.FracOfLimit, r.VCorr, r.VFVM, 100*r.RelDiff)
		x1 = append(x1, r.FlowULMin)
		y1 = append(y1, r.VCorr)
		y2 = append(y2, r.VFVM)
	}
	if err := writeCSV(dir, "ablation_solver_path.csv", func(f *os.File) error {
		return vis.WriteCSVSeries(f, []string{"flow_uLmin", "V_corr", "V_fvm"}, x1, y1, y2)
	}); err != nil {
		return err
	}

	gr, err := experiments.AblationGridResolution()
	if err != nil {
		return err
	}
	fmt.Println("    Ablation — thermal grid resolution:")
	var nxs, peaks []float64
	for _, r := range gr {
		fmt.Printf("      %3dx%-3d: peak %.2f C (delta %.2f K)\n", r.NX, r.NY, r.PeakC, r.DeltaFromFinest)
		nxs = append(nxs, float64(r.NX))
		peaks = append(peaks, r.PeakC)
	}
	if err := writeCSV(dir, "ablation_grid.csv", func(f *os.File) error {
		return vis.WriteCSVSeries(f, []string{"nx", "peak_C"}, nxs, peaks)
	}); err != nil {
		return err
	}

	vp, err := experiments.AblationVRMPlacement()
	if err != nil {
		return err
	}
	fmt.Println("    Ablation — VRM placement:")
	for _, r := range vp {
		fmt.Printf("      %-20s (%2d sites): min cache %.4f V (drop %.1f mV)\n",
			r.Strategy, r.NSites, r.MinCacheV, r.WorstDropMV)
	}

	cc, err := experiments.AblationChannelCount()
	if err != nil {
		return err
	}
	fmt.Println("    Ablation — channel count at fixed total flow:")
	var ns, amps, pumps, nets []float64
	for _, r := range cc {
		fmt.Printf("      %3d channels: %.2f A at 1 V, pump %.2f W, net %.2f W\n",
			r.NChannels, r.CurrentAt1V, r.PumpPowerW, r.NetW)
		ns = append(ns, float64(r.NChannels))
		amps = append(amps, r.CurrentAt1V)
		pumps = append(pumps, r.PumpPowerW)
		nets = append(nets, r.NetW)
	}
	return writeCSV(dir, "ablation_channels.csv", func(f *os.File) error {
		return vis.WriteCSVSeries(f, []string{"n_channels", "I_at_1V", "pump_W", "net_W"}, ns, amps, pumps, nets)
	})
}

func runExtensions(dir string) error {
	e1, err := experiments.E1C4Baseline()
	if err != nil {
		return err
	}
	fmt.Printf("    E1 — C4 baseline: %d pads total, cache rail would take %d; freeing them grows the I/O pool by %.1f%%.\n",
		e1.C4.TotalPads, e1.C4.CacheRailPads, e1.C4.IOGainPct)
	fmt.Printf("         droop: dense C4 feed %.4f V vs microfluidic VRM feed %.4f V\n",
		e1.C4.ConventionalMinV, e1.C4.MicrofluidicMinV)

	e2, err := experiments.E2DarkSilicon()
	if err != nil {
		return err
	}
	fmt.Printf("    E2 — dark silicon at a %.0f W delivery wall: %d/%d cores lit -> %d/%d with the %.1f W microfluidic cache rail (%d relit)\n",
		e2.BudgetW, e2.Comparison.Baseline.LitCores, e2.Comparison.Baseline.TotalCores,
		e2.Comparison.Assisted.LitCores, e2.Comparison.Assisted.TotalCores,
		e2.ArrayW, e2.Comparison.CoresRelit)

	e3, err := experiments.E3Stack3D()
	if err != nil {
		return err
	}
	fmt.Printf("    E3 — 3D stack: single die %.1f C -> two tiers %.1f C (+%.1f K) at %.0f W total\n",
		e3.SinglePeakC, e3.StackPeakC, e3.PenaltyK, e3.StackPowerW)

	e4, err := experiments.E4Reservoir()
	if err != nil {
		return err
	}
	fmt.Printf("    E4 — reservoir: %.1f L/side at 1 V -> %.2f Ah of %.2f Ah theoretical (%.0f%%), %.2f Wh, %.1f Wh/L, %.0f s\n",
		e4.ReservoirL, e4.Discharge.CapacityAh, e4.TheoreticalAh, e4.UtilizationPct,
		e4.Discharge.EnergyWh, e4.Discharge.EnergyDensityWhPerL, e4.Discharge.DurationS)
	var ts, socs, amps []float64
	for _, p := range e4.Discharge.Points {
		ts = append(ts, p.TimeS)
		socs = append(socs, p.SOC)
		amps = append(amps, p.CurrentA)
	}
	if err := writeCSV(dir, "e4_discharge.csv", func(f *os.File) error {
		return vis.WriteCSVSeries(f, []string{"t_s", "soc", "I_A"}, ts, socs, amps)
	}); err != nil {
		return err
	}

	e5, err := experiments.E5ChannelSpread()
	if err != nil {
		return err
	}
	fmt.Printf("    E5 — per-channel spread: %.1f%% current spread across 88 channels; equal-channel assumption error %.3f%%\n",
		e5.SpreadPct, e5.AssumptionErrPct)
	var idx []float64
	for k := range e5.CurrentA {
		idx = append(idx, float64(k))
	}
	return writeCSV(dir, "e5_channels.csv", func(f *os.File) error {
		return vis.WriteCSVSeries(f, []string{"channel", "T_C", "I_A"}, idx, e5.TempC, e5.CurrentA)
	})
}

func runExtensions2(dir string) error {
	e6, err := experiments.E6RoundTrip()
	if err != nil {
		return err
	}
	fmt.Printf("    E6 — round trip at 50%% SOC (OCV %.3f V): efficiency %.3f at half the limiting current\n",
		e6.OCV, e6.EffAtHalfLimit)
	var is, effs []float64
	for _, p := range e6.Points {
		is = append(is, p.Current)
		effs = append(effs, p.Efficiency)
	}
	if err := writeCSV(dir, "e6_roundtrip.csv", func(f *os.File) error {
		return vis.WriteCSVSeries(f, []string{"I_A", "efficiency"}, is, effs)
	}); err != nil {
		return err
	}

	e7, err := experiments.E7Workload()
	if err != nil {
		return err
	}
	fmt.Printf("    E7 — burst workload: array swings %.1f%% with the chip activity, peak %.1f C\n",
		e7.SwingPct, e7.MaxPeakC)
	var ts, chip, peak, amps []float64
	for _, s := range e7.Scenario.Samples {
		ts = append(ts, s.TimeS)
		chip = append(chip, s.ChipPowerW)
		peak = append(peak, s.PeakTC)
		amps = append(amps, s.ArrayA)
	}
	if err := writeCSV(dir, "e7_workload.csv", func(f *os.File) error {
		return vis.WriteCSVSeries(f, []string{"t_s", "chip_W", "peak_C", "array_A"}, ts, chip, peak, amps)
	}); err != nil {
		return err
	}

	e8, err := experiments.E8DesignSpace()
	if err != nil {
		return err
	}
	fmt.Printf("    E8 — design space: best %s -> %.1f W net (+%.0f%% over Table II's %.1f W)\n",
		e8.Best.Candidate, e8.Best.NetPowerW, e8.GainPct, e8.TableII.NetPowerW)
	var ws, hs, nets []float64
	for _, e := range e8.Evaluations {
		if !e.Feasible {
			continue
		}
		ws = append(ws, units.MToUM(e.Candidate.Width))
		hs = append(hs, units.MToUM(e.Candidate.Height))
		nets = append(nets, e.NetPowerW)
	}
	if err := writeCSV(dir, "e8_designspace.csv", func(f *os.File) error {
		return vis.WriteCSVSeries(f, []string{"width_um", "height_um", "net_W"}, ws, hs, nets)
	}); err != nil {
		return err
	}

	e9, err := experiments.E9Variation()
	if err != nil {
		return err
	}
	fmt.Printf("    E9 — 5%% geometry tolerance over %d realizations: array %.3f +- %.3f A (worst %.3f, nominal %.3f)\n",
		e9.Samples, e9.MeanA, e9.StdA, e9.WorstA, e9.NominalA)
	return nil
}

func runExtensions3(dir string) error {
	e10, err := experiments.E10SeriesStack()
	if err != nil {
		return err
	}
	fmt.Println("    E10 — series stacking vs manifold shunt currents:")
	var ms, shunts, imbs []float64
	for _, r := range e10.Rows {
		fmt.Printf("      M=%d (%.0f V stack): %.2f W delivered, shunt %.2f%%, imbalance %.2f%%\n",
			r.SeriesGroups, r.TerminalVoltage, r.DeliveredW, r.ShuntLossPct, r.ImbalancePct)
		ms = append(ms, float64(r.SeriesGroups))
		shunts = append(shunts, r.ShuntLossPct)
		imbs = append(imbs, r.ImbalancePct)
	}
	if err := writeCSV(dir, "e10_series_stack.csv", func(f *os.File) error {
		return vis.WriteCSVSeries(f, []string{"series_groups", "shunt_pct", "imbalance_pct"}, ms, shunts, imbs)
	}); err != nil {
		return err
	}

	e11, err := experiments.E11Clogging()
	if err != nil {
		return err
	}
	fmt.Println("    E11 — clogged-channel failure injection:")
	for _, r := range e11.Rows {
		fmt.Printf("      %d clogged (%s): peak %.2f C, array %.2f A at 1 V\n",
			r.Clogged, r.Location, r.PeakC, r.ArrayA)
	}
	return nil
}

func runExtensions4(dir string) error {
	e12, err := experiments.E12BrightSiliconFrontier()
	if err != nil {
		return err
	}
	fmt.Printf("    E12 — bright-silicon frontier: chip needs %.1f W; Table II array peaks at %.2f W (%.0f%% of the chip),\n",
		e12.ChipFullLoadW, e12.ArrayMaxW, 100*e12.DensityFractionTableII)
	fmt.Printf("          best explored geometry %.2f W (%.0f%%); full powering needs a %.1fx electrochemical gain\n",
		e12.BestGeometryMaxW, 100*e12.DensityFractionBest, e12.ElectrochemGainNeeded)

	e13, err := experiments.E13ManyCoreSweep()
	if err != nil {
		return err
	}
	fmt.Println("    E13 — architecture compromise sweep (64-core tiling):")
	var fracs, chips, fronts []float64
	for _, r := range e13.Rows {
		fmt.Printf("      core fraction %.2f: chip %.1f W, cache %.2f W (covered=%v), frontier %.0f%%\n",
			r.CoreFraction, r.ChipW, r.CacheDemandW, r.ArrayCoversCaches, 100*r.FrontierFraction)
		fracs = append(fracs, r.CoreFraction)
		chips = append(chips, r.ChipW)
		fronts = append(fronts, r.FrontierFraction)
	}
	return writeCSV(dir, "e13_compromise.csv", func(f *os.File) error {
		return vis.WriteCSVSeries(f, []string{"core_fraction", "chip_W", "frontier_frac"}, fracs, chips, fronts)
	})
}

func runExtensions5(dir string) error {
	e14, err := experiments.E14ElectrodeCoverage()
	if err != nil {
		return err
	}
	fmt.Println("    E14 — electrode coverage vs ionic constriction (eq. 11 field solve):")
	var covs, factors, amps []float64
	for _, r := range e14.Rows {
		fmt.Printf("      coverage %.2f: constriction x%.2f, array %.2f A at 1 V\n",
			r.Coverage, r.ConstrictionFactor, r.ArrayA)
		covs = append(covs, r.Coverage)
		factors = append(factors, r.ConstrictionFactor)
		amps = append(amps, r.ArrayA)
	}
	return writeCSV(dir, "e14_coverage.csv", func(f *os.File) error {
		return vis.WriteCSVSeries(f, []string{"coverage", "constriction", "I_A"}, covs, factors, amps)
	})
}

func runExtensions6(dir string) error {
	e15, err := experiments.E15Manifold()
	if err != nil {
		return err
	}
	fmt.Println("    E15 — header arrangement vs flow maldistribution:")
	for _, r := range e15.Rows {
		fmt.Printf("      %-7s: maldistribution %.1f%%, peak %.2f C, array %.3f A\n",
			r.Arrangement, r.MaldistributionPct, r.PeakC, r.ArrayA)
	}
	return nil
}

func runExtensions7(dir string) error {
	e16, err := experiments.E16AirCooledBaseline()
	if err != nil {
		return err
	}
	fmt.Printf("    E16 — conventional air-cooled baseline: %.1f C peak (35 C air) vs %.1f C microfluidic (27 C inlet), advantage %.1f K\n",
		e16.AirPeakC, e16.MicroPeakC, e16.AdvantageK)
	fmt.Printf("          85 C headroom: air carries %.0f W, microfluidic %.0f W (%.1fx)\n",
		e16.AirHeadroomW, e16.MicroHeadroomW, e16.MicroHeadroomW/e16.AirHeadroomW)
	return nil
}

func runExtensions8(dir string) error {
	e17, err := experiments.E17WakeupDroop()
	if err != nil {
		return err
	}
	fmt.Println("    E17 — cache wake-up droop vs on-die decap (1 us VRM lag):")
	var decs, droops []float64
	for _, r := range e17.Rows {
		fmt.Printf("      %.0f nF/mm2: droop %.1f mV (worst %.3f V)\n", r.DecapNFPerMM2, r.DroopMV, r.WorstV)
		decs = append(decs, r.DecapNFPerMM2)
		droops = append(droops, r.DroopMV)
	}
	return writeCSV(dir, "e17_droop.csv", func(f *os.File) error {
		return vis.WriteCSVSeries(f, []string{"decap_nF_mm2", "droop_mV"}, decs, droops)
	})
}

func runTables(dir string) error {
	for _, tab := range []experiments.Table{experiments.TableI(), experiments.TableII()} {
		fmt.Print("    " + tab.Format())
		if !tab.AllMatch() {
			return fmt.Errorf("fixture deviates from %s", tab.Name)
		}
	}
	return nil
}

func runExtensions9(dir string) error {
	e18, err := experiments.E18RefinedDesign()
	if err != nil {
		return err
	}
	fmt.Printf("    E18 — continuous refinement: grid best %s (%.2f W) -> refined %s (%.2f W, %+.1f%%)\n",
		e18.GridBest.Candidate, e18.GridBest.NetPowerW,
		e18.Refined.Candidate, e18.Refined.NetPowerW, e18.GainPct)

	e19, err := experiments.E19CounterFlow()
	if err != nil {
		return err
	}
	fmt.Printf("    E19 — counterflow layout: along-flow gradient %.2f K -> %.2f K (peak %.1f -> %.1f C)\n",
		e19.UniGradientK, e19.CounterGradientK, e19.UniPeakC, e19.CounterPeakC)
	return nil
}

func runExtensions10(dir string) error {
	e20, err := experiments.E20ThermalCap()
	if err != nil {
		return err
	}
	fmt.Println("    E20 — thermal-capping governor (60 C junction policy):")
	var flows, caps, watts []float64
	for _, r := range e20.Rows {
		fmt.Printf("      %4.0f ml/min: max load %.0f%% (%.1f W sustained)\n",
			r.FlowMLMin, 100*r.MaxLoadFraction, r.SustainedPowerW)
		flows = append(flows, r.FlowMLMin)
		caps = append(caps, r.MaxLoadFraction)
		watts = append(watts, r.SustainedPowerW)
	}
	return writeCSV(dir, "e20_thermal_cap.csv", func(f *os.File) error {
		return vis.WriteCSVSeries(f, []string{"flow_ml_min", "max_load_frac", "sustained_W"}, flows, caps, watts)
	})
}
