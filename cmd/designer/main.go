// Command designer explores the flow-cell channel design space and
// prints the ranked evaluations as a table (and optionally CSV).
//
// Usage:
//
//	designer [-flow ML_MIN] [-inlet C] [-supply V]
//	         [-maxpeak C] [-minwall UM] [-maxaspect A] [-maxpump W]
//	         [-csv]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"bright/internal/design"
	"bright/internal/units"
	"bright/internal/vis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("designer: ")
	flow := flag.Float64("flow", 676, "total electrolyte flow in ml/min")
	inlet := flag.Float64("inlet", 27, "inlet temperature in C")
	supply := flag.Float64("supply", 1.0, "rail voltage in V")
	maxPeak := flag.Float64("maxpeak", 85, "junction temperature limit in C")
	minWall := flag.Float64("minwall", 50, "minimum inter-channel wall in um")
	maxAspect := flag.Float64("maxaspect", 4, "maximum etch aspect ratio (height/width)")
	maxPump := flag.Float64("maxpump", 10, "pumping power budget in W")
	csv := flag.Bool("csv", false, "emit CSV instead of a table")
	flag.Parse()

	cons := design.Constraints{
		MaxPeakC:  *maxPeak,
		MinWallUM: *minWall,
		MaxAspect: *maxAspect,
		MaxPumpW:  *maxPump,
	}
	evs, err := design.Explore(append(design.DefaultGrid(), design.TableII()),
		*flow, *inlet, *supply, cons)
	if err != nil {
		log.Fatal(err)
	}
	if *csv {
		var ws, hs, pitches, nets []float64
		for _, e := range evs {
			if !e.Feasible {
				continue
			}
			ws = append(ws, units.MToUM(e.Candidate.Width))
			hs = append(hs, units.MToUM(e.Candidate.Height))
			pitches = append(pitches, units.MToUM(e.Candidate.Pitch))
			nets = append(nets, e.NetPowerW)
		}
		if err := vis.WriteCSVSeries(os.Stdout,
			[]string{"width_um", "height_um", "pitch_um", "net_W"},
			ws, hs, pitches, nets); err != nil {
			log.Fatal(err)
		}
		return
	}
	fmt.Printf("design space at %.0f ml/min, %.0f C, %.2f V (peak<=%.0fC wall>=%.0fum aspect<=%.1f pump<=%.1fW)\n\n",
		*flow, *inlet, *supply, *maxPeak, *minWall, *maxAspect, *maxPump)
	fmt.Println("geometry                        ch     I@1V     pump     peak      net")
	for _, e := range evs {
		if !e.Feasible {
			fmt.Printf("%-28s   --   rejected: %s\n", e.Candidate, e.Reason)
			continue
		}
		tag := ""
		if e.Candidate == design.TableII() {
			tag = "   <- Table II"
		}
		fmt.Printf("%-28s %4d   %5.2f A  %5.2f W  %5.1f C  %6.2f W%s\n",
			e.Candidate, e.NChannels, e.CurrentAt1V, e.PumpPowerW, e.PeakTempC, e.NetPowerW, tag)
	}
}
