// Command brightlint runs the repository's domain-aware static-analysis
// suite (internal/lint) over a package pattern and reports findings as
// `file:line:col: [analyzer] message`, one per line, sorted. It exits 1
// when there are findings, 2 when loading fails outright.
//
// Usage:
//
//	brightlint [-only unitconv,ctxpropagate,obsreg,errignore,
//	                  goroutinelife,locksafe,httplife]
//	           [-group] [-v] [packages...]
//
// With no packages, ./... is analyzed. -group prints findings grouped
// by analyzer with counts (the `make lint-fix-list` view). -v also
// reports packages whose type check failed (analysis still runs with
// partial information; the build gate, not the linter, owns compile
// errors).
//
// Deliberate findings are suppressed in source with
//
//	//lint:ignore <analyzer> <reason>
//
// on the flagged line or the line above; the reason is mandatory.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"bright/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer subset (default: all)")
	group := flag.Bool("group", false, "group findings by analyzer with counts")
	verbose := flag.Bool("v", false, "report type-check failures and per-package progress")
	flag.Parse()

	analyzers, err := lint.ByName(*only)
	if err != nil {
		fmt.Fprintln(os.Stderr, "brightlint:", err)
		os.Exit(2)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	pkgs, err := lint.Load("", patterns...)
	if err != nil {
		fmt.Fprintln(os.Stderr, "brightlint:", err)
		os.Exit(2)
	}
	if *verbose {
		for _, p := range pkgs {
			status := "ok"
			if len(p.TypeErrors) > 0 {
				status = fmt.Sprintf("type-check errors (%d), partial analysis: %v", len(p.TypeErrors), p.TypeErrors[0])
			}
			fmt.Fprintf(os.Stderr, "brightlint: %s: %s\n", p.ImportPath, status)
		}
	}

	diags := lint.Run(pkgs, analyzers)
	cwd, err := os.Getwd()
	rel := func(path string) string {
		if err != nil {
			return path
		}
		if r, err := filepath.Rel(cwd, path); err == nil && len(r) < len(path) {
			return r
		}
		return path
	}

	if *group {
		byAnalyzer := map[string][]lint.Diagnostic{}
		for _, d := range diags {
			byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], d)
		}
		for _, a := range analyzers {
			ds := byAnalyzer[a.Name]
			fmt.Printf("== %s (%d) — %s\n", a.Name, len(ds), a.Doc)
			for _, d := range ds {
				fmt.Printf("  %s:%d:%d: %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Message)
			}
		}
		if ds := byAnalyzer["brightlint"]; len(ds) > 0 {
			fmt.Printf("== brightlint (%d) — directive problems\n", len(ds))
			for _, d := range ds {
				fmt.Printf("  %s:%d:%d: %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Message)
			}
		}
	} else {
		for _, d := range diags {
			fmt.Printf("%s:%d:%d: [%s] %s\n", rel(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
		}
	}

	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "brightlint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
	if *verbose || *group {
		fmt.Fprintf(os.Stderr, "brightlint: clean (%d packages)\n", len(pkgs))
	}
}
