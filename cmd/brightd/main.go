// Command brightd is the bright simulation server: a long-running HTTP
// daemon exposing the integrated microfluidic power-and-cooling model as
// a concurrent evaluation service backed by internal/sim's worker pool,
// memoizing cache and batched sweep jobs.
//
// Endpoints (JSON over HTTP):
//
//	POST /v1/evaluate  — solve one configuration (fields default to the
//	                     paper's nominal point); synchronous
//	POST /v1/sweep     — submit a batched design-space sweep; returns a
//	                     job id immediately (202)
//	GET  /v1/jobs/{id} — poll a sweep job: state, progress, streamed
//	                     per-point results
//	GET  /v1/stats     — cache hit rate, queue depth, worker utilization
//	                     and solve latencies
//
// The job queue is bounded: when it is full, /v1/evaluate answers 503
// (backpressure) instead of queueing unbounded work. SIGINT/SIGTERM
// trigger a graceful shutdown that stops accepting requests, drains
// in-flight solves, and exits.
//
// Usage:
//
//	brightd [-addr :8080] [-workers N] [-queue N] [-cache N]
//	        [-kernel-threads N] [-request-timeout 5m] [-drain-timeout 30s]
//
// -kernel-threads caps the goroutines the numeric kernels fork inside
// each solve (0 = GOMAXPROCS); it defaults from the BRIGHT_NUM_THREADS
// environment variable. On a multi-core box serving few concurrent
// requests, raise it toward the core count; under a saturated worker
// pool, 1 avoids oversubscription (the workers already use every core).
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"syscall"
	"time"

	"bright/internal/sim"
)

// envInt reads an integer environment variable, returning def when the
// variable is unset or malformed.
func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
		log.Printf("brightd: ignoring malformed %s=%q", name, s)
	}
	return def
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", runtime.NumCPU(), "worker pool size")
		queueDepth  = flag.Int("queue", 64, "bounded job queue depth (full queue => 503)")
		cacheSize   = flag.Int("cache", 256, "memoization LRU capacity in reports (negative disables)")
		kernThreads = flag.Int("kernel-threads", envInt("BRIGHT_NUM_THREADS", 0),
			"goroutine cap for the numeric kernels inside each solve (0 = GOMAXPROCS; env BRIGHT_NUM_THREADS)")
		reqTimeout   = flag.Duration("request-timeout", 5*time.Minute, "per-request solve timeout")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "shutdown drain budget")
	)
	flag.Parse()

	engine := sim.New(sim.Options{
		Workers:       *workers,
		QueueDepth:    *queueDepth,
		CacheSize:     *cacheSize,
		KernelThreads: *kernThreads,
	})

	handler := withRequestTimeout(*reqTimeout, withLogging(sim.NewHandler(engine)))
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("brightd: listening on %s (%d workers, queue %d, cache %d)",
			*addr, *workers, *queueDepth, *cacheSize)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		log.Fatalf("brightd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("brightd: signal received, draining (budget %s)", *drainTimeout)
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("brightd: http shutdown: %v", err)
	}
	if err := engine.Shutdown(shutdownCtx); err != nil {
		log.Printf("brightd: engine shutdown: %v", err)
	}
	log.Printf("brightd: bye")
}

// withRequestTimeout bounds each request's solve by deriving a deadline
// context; the engine threads it into the iterative solvers, so an
// expired deadline aborts the co-simulation at an iteration boundary
// and surfaces as 504.
func withRequestTimeout(d time.Duration, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// statusRecorder captures the response code for the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

func withLogging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		log.Printf("%s %s -> %d (%s)", r.Method, r.URL.Path, rec.status,
			time.Since(start).Round(time.Millisecond))
	})
}
