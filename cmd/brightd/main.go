// Command brightd is the bright simulation server: a long-running HTTP
// daemon exposing the integrated microfluidic power-and-cooling model as
// a concurrent evaluation service backed by internal/sim's worker pool,
// memoizing cache and batched sweep jobs.
//
// Endpoints (JSON over HTTP):
//
//	POST /v1/evaluate  — solve one configuration (fields default to the
//	                     paper's nominal point); synchronous
//	POST /v1/sweep     — submit a batched design-space sweep; returns a
//	                     job id immediately (202)
//	GET  /v1/jobs/{id} — poll a sweep job: state, progress, streamed
//	                     per-point results
//	GET  /v1/stats     — cache hit rate, queue depth, worker utilization
//	                     and solve latencies (plus streaming-session
//	                     aggregates under "stream")
//	GET  /metrics      — Prometheus text exposition: serving metrics plus
//	                     Krylov/cosim/thermal solver telemetry and the
//	                     bright_stream_* session series
//	POST /v1/sessions  — open a streaming digital-twin session (see
//	                     internal/stream): workload-driven transient
//	                     electro-thermal co-simulation, frames streamed
//	                     from GET /v1/sessions/{id}/frames as SSE or
//	                     NDJSON, with advance/utilization/checkpoint/
//	                     restore sub-endpoints. A full cap answers 429
//	                     with Retry-After.
//
// The job queue is bounded: when it is full, /v1/evaluate answers 503
// with a Retry-After header (backpressure) instead of queueing
// unbounded work; a 503 without Retry-After means the daemon is
// shutting down. Every response carries an X-Request-ID header that the
// access log echoes, correlating client-visible failures with server
// log lines. SIGINT/SIGTERM trigger a graceful shutdown that stops
// accepting requests, drains in-flight solves, and exits.
//
// Usage:
//
//	brightd [-addr :8080] [-workers N] [-queue N] [-cache N]
//	        [-kernel-threads N] [-solver-precond auto|jacobi|mg]
//	        [-mg-precision auto|float64|float32] [-mg-smoother auto|jacobi|cheby]
//	        [-request-timeout 5m] [-drain-timeout 30s] [-debug-addr :6060]
//	        [-max-sessions N] [-session-idle-timeout 2m] [-session-ring N]
//
// -max-sessions caps concurrently open streaming sessions (the 429
// admission bound), -session-idle-timeout reaps sessions no client has
// touched, and -session-ring sizes each session's recent-frame buffer
// (a slow consumer falls behind by at most this many frames before the
// ring drops the oldest).
//
// -debug-addr starts an opt-in debug listener serving net/http/pprof
// under /debug/pprof/ — kept off the public address so profiling
// endpoints are never exposed to clients by accident.
//
// -kernel-threads caps the goroutines the numeric kernels fork inside
// each solve (0 = GOMAXPROCS); it defaults from the BRIGHT_NUM_THREADS
// environment variable. On a multi-core box serving few concurrent
// requests, raise it toward the core count; under a saturated worker
// pool, 1 avoids oversubscription (the workers already use every core).
//
// -solver-precond picks the preconditioner policy for every iterative
// solve (default from BRIGHT_SOLVER_PRECOND): auto selects multigrid
// for large symmetric systems and Jacobi elsewhere; jacobi and mg force
// one family, for A/B runs and for grids where the heuristic guesses
// wrong.
//
// -mg-precision and -mg-smoother tune the multigrid preconditioner
// behind the mg/auto policies (defaults from BRIGHT_MG_PRECISION and
// BRIGHT_MG_SMOOTHER): float32 runs the V-cycle in single precision
// inside the float64 Krylov loop, falling back to float64 per operator
// when the reduced precision stalls; cheby swaps the damped-Jacobi
// smoother for a degree-3 Chebyshev polynomial with eigenvalue bounds
// estimated once at setup.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"syscall"
	"time"

	"bright/internal/num"
	"bright/internal/obs"
	"bright/internal/sim"
	"bright/internal/stream"
)

// HTTP-surface telemetry, alongside the solver counters in obs.Default
// so one /metrics scrape carries both. Status classes rather than exact
// codes keep the cardinality fixed.
var (
	httpRequests = map[int]*obs.Counter{
		2: obs.Default.Counter("bright_http_requests_total", "HTTP responses by status class.", obs.L("class", "2xx")),
		3: obs.Default.Counter("bright_http_requests_total", "HTTP responses by status class.", obs.L("class", "3xx")),
		4: obs.Default.Counter("bright_http_requests_total", "HTTP responses by status class.", obs.L("class", "4xx")),
		5: obs.Default.Counter("bright_http_requests_total", "HTTP responses by status class.", obs.L("class", "5xx")),
	}
	httpDuration = obs.Default.Histogram("bright_http_request_duration_seconds",
		"End-to-end HTTP request latency.", obs.DefLatencyBuckets)
)

// envInt reads an integer environment variable, returning def when the
// variable is unset or malformed.
func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
		log.Printf("brightd: ignoring malformed %s=%q", name, s)
	}
	return def
}

// envStr reads a string environment variable, returning def when unset.
func envStr(name, def string) string {
	if s := os.Getenv(name); s != "" {
		return s
	}
	return def
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", runtime.NumCPU(), "worker pool size")
		queueDepth  = flag.Int("queue", 64, "bounded job queue depth (full queue => 503)")
		cacheSize   = flag.Int("cache", 256, "memoization LRU capacity in reports (negative disables)")
		kernThreads = flag.Int("kernel-threads", envInt("BRIGHT_NUM_THREADS", 0),
			"goroutine cap for the numeric kernels inside each solve (0 = GOMAXPROCS; env BRIGHT_NUM_THREADS)")
		reqTimeout   = flag.Duration("request-timeout", 5*time.Minute, "per-request solve timeout")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "shutdown drain budget")
		debugAddr    = flag.String("debug-addr", "",
			"opt-in debug listener serving /debug/pprof/ (empty = disabled)")
		precond = flag.String("solver-precond", envStr("BRIGHT_SOLVER_PRECOND", "auto"),
			"preconditioner policy for the iterative solvers: auto, jacobi or mg (env BRIGHT_SOLVER_PRECOND)")
		mgPrecision = flag.String("mg-precision", envStr("BRIGHT_MG_PRECISION", "auto"),
			"multigrid V-cycle arithmetic: auto, float64 or float32 (env BRIGHT_MG_PRECISION)")
		mgSmoother = flag.String("mg-smoother", envStr("BRIGHT_MG_SMOOTHER", "auto"),
			"multigrid smoother: auto, jacobi or cheby (env BRIGHT_MG_SMOOTHER)")
		maxSessions = flag.Int("max-sessions", 8,
			"streaming session cap; admissions past it answer 429")
		sessionIdle = flag.Duration("session-idle-timeout", 2*time.Minute,
			"reap streaming sessions with no client interaction for this long")
		sessionRing = flag.Int("session-ring", 256,
			"frames buffered per streaming session (drop-oldest past this)")
	)
	flag.Parse()

	pc, err := num.ParsePrecond(*precond)
	if err != nil {
		log.Fatalf("brightd: -solver-precond: %v", err)
	}
	num.SetDefaultPrecond(pc)
	prec, err := num.ParseMGPrecision(*mgPrecision)
	if err != nil {
		log.Fatalf("brightd: -mg-precision: %v", err)
	}
	num.SetDefaultMGPrecision(prec)
	sm, err := num.ParseMGSmoother(*mgSmoother)
	if err != nil {
		log.Fatalf("brightd: -mg-smoother: %v", err)
	}
	num.SetDefaultMGSmoother(sm)

	if *debugAddr != "" {
		dm := http.NewServeMux()
		dm.HandleFunc("/debug/pprof/", pprof.Index)
		dm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("brightd: debug listener (pprof) on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dm); err != nil {
				log.Printf("brightd: debug listener: %v", err)
			}
		}()
	}

	engine := sim.New(sim.Options{
		Workers:       *workers,
		QueueDepth:    *queueDepth,
		CacheSize:     *cacheSize,
		KernelThreads: *kernThreads,
	})
	sessions := stream.NewManager(stream.Options{
		MaxSessions: *maxSessions,
		IdleTimeout: *sessionIdle,
		RingSize:    *sessionRing,
	})

	handler := withRequestTimeout(*reqTimeout,
		withLogging(sim.NewHandler(engine, sim.WithStreamManager(sessions))))
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("brightd: listening on %s (%d workers, queue %d, cache %d)",
			*addr, *workers, *queueDepth, *cacheSize)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		log.Fatalf("brightd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("brightd: signal received, draining (budget %s)", *drainTimeout)
	// The root context is already canceled by the signal at this point;
	// the drain budget must run on a fresh context or Shutdown would
	// return immediately.
	//lint:ignore ctxpropagate shutdown drain runs after the root context is canceled
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("brightd: http shutdown: %v", err)
	}
	if err := sessions.Shutdown(shutdownCtx); err != nil {
		log.Printf("brightd: session shutdown: %v", err)
	}
	if err := engine.Shutdown(shutdownCtx); err != nil {
		log.Printf("brightd: engine shutdown: %v", err)
	}
	log.Printf("brightd: bye")
}

// withRequestTimeout bounds each request's solve by deriving a deadline
// context; the engine threads it into the iterative solvers, so an
// expired deadline aborts the co-simulation at an iteration boundary
// and surfaces as 504.
func withRequestTimeout(d time.Duration, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}

// statusRecorder captures the response code for the access log.
type statusRecorder struct {
	http.ResponseWriter
	status int
}

func (r *statusRecorder) WriteHeader(code int) {
	r.status = code
	r.ResponseWriter.WriteHeader(code)
}

// Flush forwards to the underlying writer so streamed responses (SSE,
// NDJSON session frames) are not buffered behind the access log
// wrapper.
func (r *statusRecorder) Flush() {
	if f, ok := r.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// withLogging assigns each request its ID (echoed in the X-Request-ID
// response header and every related server log line), records the HTTP
// telemetry, and writes the access log.
func withLogging(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		r, id := sim.EnsureRequestID(r)
		w.Header().Set("X-Request-ID", id)
		rec := &statusRecorder{ResponseWriter: w, status: http.StatusOK}
		start := time.Now()
		next.ServeHTTP(rec, r)
		elapsed := time.Since(start)
		httpDuration.Observe(elapsed.Seconds())
		if c, ok := httpRequests[rec.status/100]; ok {
			c.Inc()
		}
		log.Printf("rid=%s %s %s -> %d (%s)", id, r.Method, r.URL.Path, rec.status,
			elapsed.Round(time.Millisecond))
	})
}
