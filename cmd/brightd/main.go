// Command brightd is the bright simulation server: a long-running HTTP
// daemon exposing the integrated microfluidic power-and-cooling model as
// a concurrent evaluation service backed by internal/sim's worker pool,
// memoizing cache and batched sweep jobs.
//
// Endpoints (JSON over HTTP):
//
//	POST /v1/evaluate  — solve one configuration (fields default to the
//	                     paper's nominal point); synchronous
//	POST /v1/sweep     — submit a batched design-space sweep; returns a
//	                     job id immediately (202)
//	GET  /v1/jobs/{id} — poll a sweep job: state, progress, streamed
//	                     per-point results
//	GET  /v1/stats     — cache hit rate, queue depth, worker utilization
//	                     and solve latencies (plus streaming-session
//	                     aggregates under "stream")
//	GET  /metrics      — Prometheus text exposition: serving metrics plus
//	                     Krylov/cosim/thermal solver telemetry and the
//	                     bright_stream_* session series
//	POST /v1/sessions  — open a streaming digital-twin session (see
//	                     internal/stream): workload-driven transient
//	                     electro-thermal co-simulation, frames streamed
//	                     from GET /v1/sessions/{id}/frames as SSE or
//	                     NDJSON, with advance/utilization/checkpoint/
//	                     restore sub-endpoints. A full cap answers 429
//	                     with Retry-After.
//
// The job queue is bounded: when it is full, /v1/evaluate answers 503
// with a Retry-After header (backpressure) instead of queueing
// unbounded work; a 503 without Retry-After means the daemon is
// shutting down. Every response carries an X-Request-ID header that the
// access log echoes, correlating client-visible failures with server
// log lines. SIGINT/SIGTERM trigger a graceful shutdown that stops
// accepting requests, drains in-flight solves, and exits.
//
// Usage:
//
//	brightd [-addr :8080] [-workers N] [-queue N] [-cache N]
//	        [-kernel-threads N] [-solver-precond auto|jacobi|mg]
//	        [-mg-precision auto|float64|float32] [-mg-smoother auto|jacobi|cheby]
//	        [-sparse-format auto|csr|sell] [-sweep-segment N]
//	        [-request-timeout 5m] [-drain-timeout 30s] [-debug-addr :6060]
//	        [-max-sessions N] [-session-idle-timeout 2m] [-session-ring N]
//
// -max-sessions caps concurrently open streaming sessions (the 429
// admission bound), -session-idle-timeout reaps sessions no client has
// touched, and -session-ring sizes each session's recent-frame buffer
// (a slow consumer falls behind by at most this many frames before the
// ring drops the oldest).
//
// Coordinator mode (-coordinator -backends host:port,host:port,...)
// turns the daemon into a stateless cluster front (internal/cluster)
// instead of a solving node: the same HTTP surface, with /v1/evaluate
// consistent-hashed across the backend brightds by canonical
// configuration key, /v1/sweep partitioned into whole warm-start
// chains, slow shards hedged once after a p99-derived delay, dead
// shards health-checked out of the ring and handed their last cache
// snapshot on rejoin, and per-client token-bucket admission control
// (-quota-rps/-quota-burst; 429 + Retry-After past the burst).
// -hedge-min floors the hedge delay, -health-interval paces liveness
// probes, -snapshot-interval paces the cache-snapshot pulls that make
// warm rejoin possible, and -rebalance-depth enables mid-sweep chain
// re-balancing: a shard still holding more than this many unfinished
// chains of one sweep while another shard sits idle has its queued
// chains moved over (0, the default, disables).
//
// -debug-addr starts an opt-in debug listener serving net/http/pprof
// under /debug/pprof/ — kept off the public address so profiling
// endpoints are never exposed to clients by accident.
//
// -kernel-threads caps the goroutines the numeric kernels fork inside
// each solve (0 = GOMAXPROCS); it defaults from the BRIGHT_NUM_THREADS
// environment variable. On a multi-core box serving few concurrent
// requests, raise it toward the core count; under a saturated worker
// pool, 1 avoids oversubscription (the workers already use every core).
//
// -solver-precond picks the preconditioner policy for every iterative
// solve (default from BRIGHT_SOLVER_PRECOND): auto selects multigrid
// for large symmetric systems and Jacobi elsewhere; jacobi and mg force
// one family, for A/B runs and for grids where the heuristic guesses
// wrong.
//
// -mg-precision and -mg-smoother tune the multigrid preconditioner
// behind the mg/auto policies (defaults from BRIGHT_MG_PRECISION and
// BRIGHT_MG_SMOOTHER): float32 runs the V-cycle in single precision
// inside the float64 Krylov loop, falling back to float64 per operator
// when the reduced precision stalls; cheby swaps the damped-Jacobi
// smoother for a degree-3 Chebyshev polynomial with eigenvalue bounds
// estimated once at setup.
//
// -sparse-format picks the SpMV storage layout for every iterative
// solve (default from BRIGHT_SPARSE_FORMAT): auto converts large
// operators to the SELL-C-σ sliced-ELLPACK layout (falling back to CSR
// when the padding overhead is too high); csr and sell force one layout
// for A/B runs.
//
// -sweep-segment bounds how many grid points one stealable sweep
// segment carries (0 = default, negative disables chain splitting and
// restores the whole-chain walk). Smaller segments spread a skewed
// sweep across more workers at the cost of more cold warm-start
// restarts; the default suits the paper's sweep shapes.
package main

import (
	"context"
	"errors"
	"flag"
	"log"
	"net/http"
	"net/http/pprof"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"syscall"
	"time"

	"bright/internal/cluster"
	"bright/internal/num"
	"bright/internal/sim"
	"bright/internal/stream"
)

// envInt reads an integer environment variable, returning def when the
// variable is unset or malformed.
func envInt(name string, def int) int {
	if s := os.Getenv(name); s != "" {
		if v, err := strconv.Atoi(s); err == nil {
			return v
		}
		log.Printf("brightd: ignoring malformed %s=%q", name, s)
	}
	return def
}

// envStr reads a string environment variable, returning def when unset.
func envStr(name, def string) string {
	if s := os.Getenv(name); s != "" {
		return s
	}
	return def
}

func main() {
	var (
		addr        = flag.String("addr", ":8080", "listen address")
		workers     = flag.Int("workers", runtime.NumCPU(), "worker pool size")
		queueDepth  = flag.Int("queue", 64, "bounded job queue depth (full queue => 503)")
		cacheSize   = flag.Int("cache", 256, "memoization LRU capacity in reports (negative disables)")
		kernThreads = flag.Int("kernel-threads", envInt("BRIGHT_NUM_THREADS", 0),
			"goroutine cap for the numeric kernels inside each solve (0 = GOMAXPROCS; env BRIGHT_NUM_THREADS)")
		reqTimeout   = flag.Duration("request-timeout", 5*time.Minute, "per-request solve timeout")
		drainTimeout = flag.Duration("drain-timeout", 30*time.Second, "shutdown drain budget")
		debugAddr    = flag.String("debug-addr", "",
			"opt-in debug listener serving /debug/pprof/ (empty = disabled)")
		precond = flag.String("solver-precond", envStr("BRIGHT_SOLVER_PRECOND", "auto"),
			"preconditioner policy for the iterative solvers: auto, jacobi or mg (env BRIGHT_SOLVER_PRECOND)")
		mgPrecision = flag.String("mg-precision", envStr("BRIGHT_MG_PRECISION", "auto"),
			"multigrid V-cycle arithmetic: auto, float64 or float32 (env BRIGHT_MG_PRECISION)")
		mgSmoother = flag.String("mg-smoother", envStr("BRIGHT_MG_SMOOTHER", "auto"),
			"multigrid smoother: auto, jacobi or cheby (env BRIGHT_MG_SMOOTHER)")
		sparseFormat = flag.String("sparse-format", envStr("BRIGHT_SPARSE_FORMAT", "auto"),
			"SpMV storage layout: auto, csr or sell (env BRIGHT_SPARSE_FORMAT)")
		sweepSegment = flag.Int("sweep-segment", 0,
			"max grid points per stealable sweep segment (0 = default, negative disables chain splitting)")
		maxSessions = flag.Int("max-sessions", 8,
			"streaming session cap; admissions past it answer 429")
		sessionIdle = flag.Duration("session-idle-timeout", 2*time.Minute,
			"reap streaming sessions with no client interaction for this long")
		sessionRing = flag.Int("session-ring", 256,
			"frames buffered per streaming session (drop-oldest past this)")
		coordMode = flag.Bool("coordinator", false,
			"run as a cluster coordinator fronting -backends instead of a solving node")
		backends = flag.String("backends", "",
			"comma-separated backend host:port list (coordinator mode)")
		hedgeMin = flag.Duration("hedge-min", 250*time.Millisecond,
			"floor for the hedged-retry delay (coordinator mode)")
		quotaRPS = flag.Float64("quota-rps", 0,
			"per-client admission rate for solve submissions, 0 disables (coordinator mode)")
		quotaBurst = flag.Int("quota-burst", 10,
			"per-client admission burst (coordinator mode)")
		healthInterval = flag.Duration("health-interval", 2*time.Second,
			"backend liveness probe period (coordinator mode)")
		snapshotInterval = flag.Duration("snapshot-interval", 30*time.Second,
			"backend cache-snapshot pull period, <0 disables (coordinator mode)")
		rebalanceDepth = flag.Int("rebalance-depth", 0,
			"per-shard unfinished-chain depth past which queued sweep chains move to idle shards, 0 disables (coordinator mode)")
	)
	flag.Parse()

	if *coordMode {
		runCoordinator(coordinatorConfig{
			addr:             *addr,
			backends:         *backends,
			hedgeMin:         *hedgeMin,
			quotaRPS:         *quotaRPS,
			quotaBurst:       *quotaBurst,
			healthInterval:   *healthInterval,
			snapshotInterval: *snapshotInterval,
			rebalanceDepth:   *rebalanceDepth,
			reqTimeout:       *reqTimeout,
			drainTimeout:     *drainTimeout,
		})
		return
	}

	pc, err := num.ParsePrecond(*precond)
	if err != nil {
		log.Fatalf("brightd: -solver-precond: %v", err)
	}
	num.SetDefaultPrecond(pc)
	prec, err := num.ParseMGPrecision(*mgPrecision)
	if err != nil {
		log.Fatalf("brightd: -mg-precision: %v", err)
	}
	num.SetDefaultMGPrecision(prec)
	sm, err := num.ParseMGSmoother(*mgSmoother)
	if err != nil {
		log.Fatalf("brightd: -mg-smoother: %v", err)
	}
	num.SetDefaultMGSmoother(sm)
	sf, err := num.ParseSparseFormat(*sparseFormat)
	if err != nil {
		log.Fatalf("brightd: -sparse-format: %v", err)
	}
	num.SetDefaultSparseFormat(sf)

	if *debugAddr != "" {
		dm := http.NewServeMux()
		dm.HandleFunc("/debug/pprof/", pprof.Index)
		dm.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		dm.HandleFunc("/debug/pprof/profile", pprof.Profile)
		dm.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		dm.HandleFunc("/debug/pprof/trace", pprof.Trace)
		go func() {
			log.Printf("brightd: debug listener (pprof) on %s", *debugAddr)
			if err := http.ListenAndServe(*debugAddr, dm); err != nil {
				log.Printf("brightd: debug listener: %v", err)
			}
		}()
	}

	engine := sim.New(sim.Options{
		Workers:       *workers,
		QueueDepth:    *queueDepth,
		CacheSize:     *cacheSize,
		KernelThreads: *kernThreads,
		SweepSegment:  *sweepSegment,
	})
	sessions := stream.NewManager(stream.Options{
		MaxSessions: *maxSessions,
		IdleTimeout: *sessionIdle,
		RingSize:    *sessionRing,
	})

	handler := withRequestTimeout(*reqTimeout,
		sim.WithAccessLog(sim.NewHandler(engine, sim.WithStreamManager(sessions))))
	srv := &http.Server{
		Addr:              *addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errc := make(chan error, 1)
	go func() {
		log.Printf("brightd: listening on %s (%d workers, queue %d, cache %d)",
			*addr, *workers, *queueDepth, *cacheSize)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		log.Fatalf("brightd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("brightd: signal received, draining (budget %s)", *drainTimeout)
	// The root context is already canceled by the signal at this point;
	// the drain budget must run on a fresh context or Shutdown would
	// return immediately.
	//lint:ignore ctxpropagate shutdown drain runs after the root context is canceled
	shutdownCtx, cancel := context.WithTimeout(context.Background(), *drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("brightd: http shutdown: %v", err)
	}
	if err := sessions.Shutdown(shutdownCtx); err != nil {
		log.Printf("brightd: session shutdown: %v", err)
	}
	if err := engine.Shutdown(shutdownCtx); err != nil {
		log.Printf("brightd: engine shutdown: %v", err)
	}
	log.Printf("brightd: bye")
}

// coordinatorConfig carries the coordinator-mode flags.
type coordinatorConfig struct {
	addr             string
	backends         string
	hedgeMin         time.Duration
	quotaRPS         float64
	quotaBurst       int
	healthInterval   time.Duration
	snapshotInterval time.Duration
	rebalanceDepth   int
	reqTimeout       time.Duration
	drainTimeout     time.Duration
}

// runCoordinator is coordinator-mode main: no engine, no sessions of
// its own — a cluster.Coordinator behind the same middleware stack the
// solving daemon uses.
func runCoordinator(cfg coordinatorConfig) {
	var addrs []string
	for _, a := range strings.Split(cfg.backends, ",") {
		if a = strings.TrimSpace(a); a != "" {
			addrs = append(addrs, a)
		}
	}
	coord, err := cluster.NewCoordinator(cluster.Options{
		Backends:         addrs,
		HedgeMin:         cfg.hedgeMin,
		QuotaRPS:         cfg.quotaRPS,
		QuotaBurst:       cfg.quotaBurst,
		HealthInterval:   cfg.healthInterval,
		SnapshotInterval: cfg.snapshotInterval,
		RebalanceDepth:   cfg.rebalanceDepth,
	})
	if err != nil {
		log.Fatalf("brightd: -coordinator: %v (need -backends host:port,...)", err)
	}

	handler := withRequestTimeout(cfg.reqTimeout, sim.WithAccessLog(coord.Handler()))
	srv := &http.Server{
		Addr:              cfg.addr,
		Handler:           handler,
		ReadHeaderTimeout: 10 * time.Second,
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	go coord.Run(ctx)

	errc := make(chan error, 1)
	go func() {
		log.Printf("brightd: coordinator listening on %s fronting %d backends %v",
			cfg.addr, len(addrs), addrs)
		if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
			errc <- err
		}
	}()

	select {
	case err := <-errc:
		log.Fatalf("brightd: %v", err)
	case <-ctx.Done():
	}

	log.Printf("brightd: signal received, draining (budget %s)", cfg.drainTimeout)
	// The root context is canceled by the signal already; the drain
	// budget needs a fresh context (see the solving-node path).
	//lint:ignore ctxpropagate shutdown drain runs after the root context is canceled
	shutdownCtx, cancel := context.WithTimeout(context.Background(), cfg.drainTimeout)
	defer cancel()
	if err := srv.Shutdown(shutdownCtx); err != nil {
		log.Printf("brightd: http shutdown: %v", err)
	}
	log.Printf("brightd: coordinator bye")
}

// withRequestTimeout bounds each request's solve by deriving a deadline
// context; the engine threads it into the iterative solvers, so an
// expired deadline aborts the co-simulation at an iteration boundary
// and surfaces as 504.
func withRequestTimeout(d time.Duration, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		ctx, cancel := context.WithTimeout(r.Context(), d)
		defer cancel()
		next.ServeHTTP(w, r.WithContext(ctx))
	})
}
