// Command flowsim sweeps the polarization curve of a single co-laminar
// microfluidic vanadium flow cell and prints it as CSV.
//
// Usage:
//
//	flowsim [-cell kjeang|power7] [-flow F] [-temp C] [-points N]
//	        [-path corr|fvm] [-maxfrac F]
//
// For the kjeang cell, -flow is the per-stream flow rate in uL/min
// (Table I sweeps 2.5..300); for the power7 cell it is the array total
// in ml/min (Table II: 676).
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"bright/internal/flowcell"
	"bright/internal/units"
	"bright/internal/vis"
)

func main() {
	log.SetFlags(0)
	log.SetPrefix("flowsim: ")
	cellKind := flag.String("cell", "kjeang", "cell fixture: kjeang (Table I) or power7 (Table II channel)")
	flow := flag.Float64("flow", 60, "flow rate (uL/min per stream for kjeang, ml/min total for power7)")
	tempC := flag.Float64("temp", 25, "operating temperature in C")
	points := flag.Int("points", 20, "sweep points")
	path := flag.String("path", "corr", "mass-transfer solver: corr or fvm")
	maxFrac := flag.Float64("maxfrac", 0.95, "sweep up to this fraction of the limiting current")
	flag.Parse()

	var cell *flowcell.Cell
	scale := 1.0
	switch *cellKind {
	case "kjeang":
		cell = flowcell.KjeangCell(*flow)
	case "power7":
		a := flowcell.Power7ArrayAt(*flow, units.CtoK(*tempC))
		cell = &a.Cell
		scale = float64(a.NChannels)
	default:
		log.Fatalf("unknown cell %q", *cellKind)
	}
	cell.Temperature = units.CtoK(*tempC)
	switch *path {
	case "corr":
		cell.Path = flowcell.PathCorrelation
	case "fvm":
		cell.Path = flowcell.PathFVM
	default:
		log.Fatalf("unknown path %q", *path)
	}

	ocv, err := cell.OpenCircuitVoltage()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Fprintf(os.Stderr, "cell=%s flow=%g T=%.1fC path=%s OCV=%.3fV iL=%.4gA (x%g channels)\n",
		*cellKind, *flow, *tempC, cell.Path, ocv, cell.LimitingCurrent(), scale)

	curve, err := cell.Polarize(*points, *maxFrac)
	if err != nil {
		log.Fatal(err)
	}
	var iA, v, p, iDens []float64
	for _, op := range curve {
		iA = append(iA, op.Current*scale)
		v = append(v, op.Voltage)
		p = append(p, op.Power*scale)
		iDens = append(iDens, units.APerM2ToMAPerCM2(op.CurrentDensity))
	}
	if err := vis.WriteCSVSeries(os.Stdout,
		[]string{"I_A", "i_mA_cm2", "V", "P_W"}, iA, iDens, v, p); err != nil {
		log.Fatal(err)
	}
}
