module bright

go 1.22
