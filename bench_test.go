package bright_test

// The benchmark harness regenerates every table and figure of the
// paper's evaluation (see DESIGN.md section 4 for the experiment index
// and EXPERIMENTS.md for the recorded paper-vs-measured values):
//
//	BenchmarkFig3Polarization        — Fig. 3 validation curves
//	BenchmarkFig7ArrayVI             — Fig. 7 array V-I characteristic
//	BenchmarkFig8VoltageMap          — Fig. 8 power-grid voltage map
//	BenchmarkFig9ThermalMap          — Fig. 9 thermal map
//	BenchmarkS1CachePower            — Sec. III-A cache-power headline
//	BenchmarkS2Hydraulics            — Sec. III-B pumping power
//	BenchmarkS3TempSensitivityNominal— Sec. III-B <=4% coupling gain
//	BenchmarkS4HotOperation          — Sec. III-B ~23% hot-operation gain
//	BenchmarkAblation*               — design-choice studies
//
// Headline quantities are attached to each benchmark via ReportMetric,
// so `go test -bench . -benchmem` prints the paper-facing numbers next
// to the timing.

import (
	"context"
	"fmt"
	"runtime"
	"sync/atomic"
	"testing"

	"bright"
	"bright/internal/core"
	"bright/internal/experiments"
)

func BenchmarkFig3Polarization(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		curves, err := experiments.Fig3(10)
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, c := range curves {
			if c.MaxErrModel > worst {
				worst = c.MaxErrModel
			}
			if c.MaxErrFVM > worst {
				worst = c.MaxErrFVM
			}
		}
	}
	b.ReportMetric(100*worst, "worst-err-%")
}

func BenchmarkFig7ArrayVI(b *testing.B) {
	var at1V float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig7(25)
		if err != nil {
			b.Fatal(err)
		}
		at1V = res.CurrentAt1V
	}
	b.ReportMetric(at1V, "A@1V")
}

func BenchmarkFig8VoltageMap(b *testing.B) {
	var minV float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig8()
		if err != nil {
			b.Fatal(err)
		}
		minV = res.MinCacheV
	}
	b.ReportMetric(minV, "minV")
}

func BenchmarkFig9ThermalMap(b *testing.B) {
	var peak float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.Fig9(676, 27)
		if err != nil {
			b.Fatal(err)
		}
		peak = res.PeakC
	}
	b.ReportMetric(peak, "peakC")
}

func BenchmarkS1CachePower(b *testing.B) {
	var delivered float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.S1CachePower()
		if err != nil {
			b.Fatal(err)
		}
		delivered = res.DeliveredW
	}
	b.ReportMetric(delivered, "W-delivered")
}

func BenchmarkS2Hydraulics(b *testing.B) {
	var pump float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.S2Hydraulics()
		if err != nil {
			b.Fatal(err)
		}
		pump = res.PumpPowerW
	}
	b.ReportMetric(pump, "W-pump")
}

func BenchmarkS3TempSensitivityNominal(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.S3TempSensitivityNominal()
		if err != nil {
			b.Fatal(err)
		}
		gain = res.CurrentGainPct
	}
	b.ReportMetric(gain, "gain-%")
}

func BenchmarkS4HotOperation(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.S4HotOperation()
		if err != nil {
			b.Fatal(err)
		}
		gain = res.LowFlowGainPct
	}
	b.ReportMetric(gain, "lowflow-gain-%")
}

func BenchmarkAblationSolverPath(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationSolverPath()
		if err != nil {
			b.Fatal(err)
		}
		worst = 0
		for _, r := range rows {
			if r.RelDiff > worst {
				worst = r.RelDiff
			}
		}
	}
	b.ReportMetric(100*worst, "worst-path-diff-%")
}

func BenchmarkAblationGridResolution(b *testing.B) {
	var deltaDefault float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationGridResolution()
		if err != nil {
			b.Fatal(err)
		}
		for _, r := range rows {
			if r.NX == 88 {
				deltaDefault = r.DeltaFromFinest
			}
		}
	}
	b.ReportMetric(deltaDefault, "K-from-finest")
}

func BenchmarkAblationVRMPlacement(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationVRMPlacement()
		if err != nil {
			b.Fatal(err)
		}
		spread = rows[1].WorstDropMV - rows[0].WorstDropMV
	}
	b.ReportMetric(spread, "mV-penalty-single-site")
}

func BenchmarkE1C4Baseline(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E1C4Baseline()
		if err != nil {
			b.Fatal(err)
		}
		gain = res.C4.IOGainPct
	}
	b.ReportMetric(gain, "io-gain-%")
}

func BenchmarkE2DarkSilicon(b *testing.B) {
	var relit float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E2DarkSilicon()
		if err != nil {
			b.Fatal(err)
		}
		relit = float64(res.Comparison.CoresRelit)
	}
	b.ReportMetric(relit, "cores-relit")
}

func BenchmarkE3Stack3D(b *testing.B) {
	var penalty float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E3Stack3D()
		if err != nil {
			b.Fatal(err)
		}
		penalty = res.PenaltyK
	}
	b.ReportMetric(penalty, "stack-penalty-K")
}

func BenchmarkE4Reservoir(b *testing.B) {
	var whPerL float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E4Reservoir()
		if err != nil {
			b.Fatal(err)
		}
		whPerL = res.Discharge.EnergyDensityWhPerL
	}
	b.ReportMetric(whPerL, "Wh-per-L")
}

func BenchmarkE5ChannelSpread(b *testing.B) {
	var spread float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E5ChannelSpread()
		if err != nil {
			b.Fatal(err)
		}
		spread = res.SpreadPct
	}
	b.ReportMetric(spread, "spread-%")
}

func BenchmarkE6RoundTrip(b *testing.B) {
	var eff float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E6RoundTrip()
		if err != nil {
			b.Fatal(err)
		}
		eff = res.EffAtHalfLimit
	}
	b.ReportMetric(eff, "eff@half-limit")
}

func BenchmarkE7Workload(b *testing.B) {
	var swing float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E7Workload()
		if err != nil {
			b.Fatal(err)
		}
		swing = res.SwingPct
	}
	b.ReportMetric(swing, "array-swing-%")
}

func BenchmarkE8DesignSpace(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E8DesignSpace()
		if err != nil {
			b.Fatal(err)
		}
		gain = res.GainPct
	}
	b.ReportMetric(gain, "best-vs-TableII-%")
}

func BenchmarkE9Variation(b *testing.B) {
	var rel float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E9Variation()
		if err != nil {
			b.Fatal(err)
		}
		rel = 100 * res.StdA / res.NominalA
	}
	b.ReportMetric(rel, "array-spread-%")
}

func BenchmarkE10SeriesStack(b *testing.B) {
	var worst float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E10SeriesStack()
		if err != nil {
			b.Fatal(err)
		}
		worst = res.Rows[len(res.Rows)-1].ShuntLossPct
	}
	b.ReportMetric(worst, "shunt-loss-%@8s")
}

func BenchmarkE11Clogging(b *testing.B) {
	var rise float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E11Clogging()
		if err != nil {
			b.Fatal(err)
		}
		rise = res.Rows[3].PeakC - res.Rows[0].PeakC
	}
	b.ReportMetric(rise, "K-rise@8clogs")
}

func BenchmarkE12BrightSiliconFrontier(b *testing.B) {
	var gain float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E12BrightSiliconFrontier()
		if err != nil {
			b.Fatal(err)
		}
		gain = res.ElectrochemGainNeeded
	}
	b.ReportMetric(gain, "echem-gain-needed-x")
}

func BenchmarkE13ManyCoreSweep(b *testing.B) {
	var frontier float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E13ManyCoreSweep()
		if err != nil {
			b.Fatal(err)
		}
		frontier = res.Rows[len(res.Rows)-1].FrontierFraction
	}
	b.ReportMetric(frontier, "best-frontier-frac")
}

func BenchmarkE14ElectrodeCoverage(b *testing.B) {
	var worstFactor float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E14ElectrodeCoverage()
		if err != nil {
			b.Fatal(err)
		}
		worstFactor = res.Rows[len(res.Rows)-1].ConstrictionFactor
	}
	b.ReportMetric(worstFactor, "constriction@25%")
}

func BenchmarkE15Manifold(b *testing.B) {
	var uMaldist float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E15Manifold()
		if err != nil {
			b.Fatal(err)
		}
		uMaldist = res.Rows[1].MaldistributionPct
	}
	b.ReportMetric(uMaldist, "U-maldist-%")
}

func BenchmarkE16AirCooledBaseline(b *testing.B) {
	var adv float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E16AirCooledBaseline()
		if err != nil {
			b.Fatal(err)
		}
		adv = res.AdvantageK
	}
	b.ReportMetric(adv, "K-advantage")
}

func BenchmarkE17WakeupDroop(b *testing.B) {
	var droop float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E17WakeupDroop()
		if err != nil {
			b.Fatal(err)
		}
		droop = res.Rows[len(res.Rows)-1].DroopMV
	}
	b.ReportMetric(droop, "droop-mV@50nF")
}

func BenchmarkE18RefinedDesign(b *testing.B) {
	var net float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E18RefinedDesign()
		if err != nil {
			b.Fatal(err)
		}
		net = res.Refined.NetPowerW
	}
	b.ReportMetric(net, "refined-net-W")
}

func BenchmarkE19CounterFlow(b *testing.B) {
	var ratio float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E19CounterFlow()
		if err != nil {
			b.Fatal(err)
		}
		ratio = res.CounterGradientK / res.UniGradientK
	}
	b.ReportMetric(ratio, "gradient-ratio")
}

func BenchmarkE20ThermalCap(b *testing.B) {
	var worstCap float64
	for i := 0; i < b.N; i++ {
		res, err := experiments.E20ThermalCap()
		if err != nil {
			b.Fatal(err)
		}
		worstCap = res.Rows[len(res.Rows)-1].MaxLoadFraction
	}
	b.ReportMetric(worstCap, "cap@10ml-min")
}

// BenchmarkEngineThroughput is the serving-layer baseline: evaluates/sec
// through the sim engine's queue + cache + single-flight path at 1, 4
// and NumCPU workers, cold cache (every request distinct, every request
// solves) versus warm cache (one hot config, every request hits). The
// solver is synthetic — a fixed slug of floating-point work standing in
// for a real solve — so the numbers isolate engine overhead and pool
// scaling from solver physics. Invert ns/op for evaluates/sec.
func BenchmarkEngineThroughput(b *testing.B) {
	synthetic := func(ctx context.Context, cfg core.Config) (*core.Report, error) {
		// ~the cost of a cheap solver stage, so worker scaling is visible.
		acc := 0.0
		for k := 0; k < 5000; k++ {
			acc += float64(k) * cfg.FlowMLMin
		}
		return &core.Report{Config: cfg, NetElectricalGainW: acc}, nil
	}
	workerCounts := []int{1, 4, runtime.NumCPU()}
	for _, workers := range workerCounts {
		for _, warm := range []bool{false, true} {
			label := fmt.Sprintf("workers=%d/cache=cold", workers)
			if warm {
				label = fmt.Sprintf("workers=%d/cache=warm", workers)
			}
			b.Run(label, func(b *testing.B) {
				e := bright.NewEngine(bright.EngineOptions{
					Workers:    workers,
					QueueDepth: 4096,
					CacheSize:  8, // cold path must keep missing
					Solver:     synthetic,
				})
				defer e.Shutdown(context.Background())
				hot := core.DefaultConfig()
				if warm {
					if _, err := e.Evaluate(context.Background(), hot); err != nil {
						b.Fatal(err)
					}
				}
				var seq atomic.Int64
				b.ResetTimer()
				b.RunParallel(func(pb *testing.PB) {
					for pb.Next() {
						cfg := hot
						if !warm {
							// Distinct beyond the canonical-key tolerance:
							// every cold request is a fresh solve.
							cfg.FlowMLMin = 100 + 0.001*float64(seq.Add(1))
						}
						if _, err := e.Evaluate(context.Background(), cfg); err != nil {
							b.Fatal(err)
						}
					}
				})
			})
		}
	}
}

func BenchmarkAblationChannelCount(b *testing.B) {
	var best float64
	for i := 0; i < b.N; i++ {
		rows, err := experiments.AblationChannelCount()
		if err != nil {
			b.Fatal(err)
		}
		best = 0
		for _, r := range rows {
			if r.NetW > best {
				best = r.NetW
			}
		}
	}
	b.ReportMetric(best, "best-net-W")
}
