// Quickstart: build the integrated microfluidically powered-and-cooled
// POWER7+ system at the paper's nominal operating point and print the
// headline report. This is the minimal end-to-end use of the public
// API.
package main

import (
	"fmt"
	"log"

	"bright"
)

func main() {
	sys, err := bright.NewSystem(bright.DefaultConfig())
	if err != nil {
		log.Fatal(err)
	}
	rep, err := sys.Evaluate()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println(rep.Summary())

	// The three headline claims of the paper, answered by the model:
	fmt.Println()
	fmt.Printf("can the flow cells power the caches?   %v (%.1f W delivered vs %.1f W demand)\n",
		rep.PowersCaches, rep.DeliveredW, rep.CacheDemandW)
	fmt.Printf("does the chip stay cool?               %v (peak %.1f C)\n",
		rep.PeakTempC < 85, rep.PeakTempC)
	fmt.Printf("does generation beat pumping?          %v (net %.1f W)\n",
		rep.NetElectricalGainW > 0, rep.NetElectricalGainW)
}
