// Hotrun: the Section III-B electro-thermal coupling study. Sweeps the
// electrolyte flow rate and inlet temperature, running the coupled
// co-simulation at each point, and shows the paper's counterintuitive
// result: running the flow cells *hotter* (low flow or warm inlet)
// increases the generated power — up to ~23% — because the vanadium
// kinetics and diffusion both accelerate with temperature.
package main

import (
	"fmt"
	"log"

	"bright"
)

func main() {
	fmt.Println("electro-thermal coupling study (1.0 V rail, full chip load)")
	fmt.Println()
	fmt.Println("flow sweep at 27 C inlet:")
	fmt.Println("   flow [ml/min]   cell T [C]   I [A]   gain vs isothermal")
	for _, flow := range []float64{676, 300, 150, 48} {
		g, err := bright.CouplingGain(bright.CoSimConfig{
			TotalFlowMLMin:  flow,
			InletTempC:      27,
			TerminalVoltage: 1.0,
		})
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %13.0f   %10.1f   %5.2f   %+.1f%%\n",
			flow, bright.KtoC(g.Coupled.CellTempK), g.Coupled.Operating.Current,
			100*g.PowerGain)
	}
	fmt.Println()
	fmt.Println("inlet-temperature sweep at 676 ml/min:")
	fmt.Println("   inlet [C]   cell T [C]   I [A]")
	var base float64
	for _, inlet := range []float64{27, 32, 37} {
		res, err := bright.RunCoSim(bright.CoSimConfig{
			TotalFlowMLMin:  676,
			InletTempC:      inlet,
			TerminalVoltage: 1.0,
		})
		if err != nil {
			log.Fatal(err)
		}
		if inlet == 27 {
			base = res.Operating.Power
		}
		fmt.Printf("   %9.0f   %10.1f   %5.2f  (%+.1f%% vs 27 C)\n",
			inlet, bright.KtoC(res.CellTempK), res.Operating.Current,
			100*(res.Operating.Power/base-1))
	}
	fmt.Println()
	fmt.Println("the paper's claim: 48 ml/min or a 37 C inlet buys up to ~23% more")
	fmt.Println("power — heat, normally the enemy, works for the power supply here.")
}
