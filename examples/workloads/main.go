// Workloads: the energy-proportional story end to end — a bursty chip
// drives the transient thermal model, the flow-cell output breathes
// with the temperature, and the thermal-capping governor shows how far
// the coolant valve can be turned down before cores must be shed.
package main

import (
	"fmt"
	"log"

	"bright"
)

func main() {
	fmt.Println("burst workload (0.4 s period, 50% duty) at 676 ml/min, 27 C:")
	res, err := bright.RunWorkloadScenario(bright.ScenarioConfig{
		Trace:           bright.BurstWorkload(0.4, 0.5),
		TotalFlowMLMin:  676,
		InletTempC:      27,
		TerminalVoltage: 1.0,
		Periods:         2,
	})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("   t [s]   chip [W]   peak [C]   array [A]")
	step := len(res.Samples) / 12
	if step == 0 {
		step = 1
	}
	for k := 0; k < len(res.Samples); k += step {
		s := res.Samples[k]
		fmt.Printf("   %5.2f   %8.1f   %8.2f   %9.3f\n", s.TimeS, s.ChipPowerW, s.PeakTC, s.ArrayA)
	}
	fmt.Printf("array swing %.1f%%; max peak %.1f C; %.4f Wh delivered\n\n",
		100*(res.ArrayMaxA-res.ArrayMinA)/res.ArrayMinA, res.MaxPeakC, res.EnergyDeliveredWh)

	fmt.Println("thermal-capping governor (60 C junction policy):")
	fmt.Println("   flow [ml/min]   max load   sustained [W]")
	for _, flow := range []float64{676, 48, 20, 10} {
		cap, err := bright.ThermalCap(flow, 27, 60)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("   %13.0f   %7.0f%%   %12.1f\n",
			flow, 100*cap.MaxLoadFraction, cap.SustainedPowerW)
	}
	fmt.Println("\nthe coolant valve is now a power-management knob: the same")
	fmt.Println("governor that caps load can trade pump watts for compute watts.")
}
