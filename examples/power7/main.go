// Power7: the full case study of Section III — the 88-channel Table II
// flow-cell array on the IBM POWER7+ die. Reproduces the three figures:
// the array V-I characteristic (Fig. 7), the cache power-grid voltage
// map (Fig. 8) and the full-load thermal map (Fig. 9), with ASCII
// renderings.
package main

import (
	"fmt"
	"log"

	"bright"
	"bright/internal/experiments"
	"bright/internal/units"
	"bright/internal/vis"
)

func main() {
	// Fig. 7: array V-I.
	a := bright.Power7Array()
	curve, err := a.Polarize(12, 0.98)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("Fig. 7 — 88-channel array V-I characteristic")
	fmt.Println("   I [A]     V [V]    P [W]")
	for _, op := range curve {
		fmt.Printf("   %6.2f   %6.3f   %6.2f\n", op.Current, op.Voltage, op.Power)
	}
	at1, err := a.CurrentAtVoltage(1.0)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("headline: %.2f A at 1.00 V (paper: 6 A) -> %.2f W for the caches\n\n",
		at1.Current, at1.Power)

	// Fig. 8: voltage map.
	f8, err := experiments.Fig8()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig. 8 — cache power-grid voltage map: %.4f .. %.4f V (paper: 0.96-0.995 V)\n",
		f8.MinCacheV, f8.MaxV)
	fmt.Print(vis.ASCIIHeatmap(f8.Solution.V, vis.HeatmapOptions{Unit: "V", FlipY: true}))
	fmt.Println()

	// Fig. 9: thermal map.
	f9, err := experiments.Fig9(676, 27)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("Fig. 9 — full-load thermal map: peak %.1f C at 676 ml/min, 27 C inlet (paper: 41 C)\n",
		f9.PeakC)
	tC := f9.Solution.ActiveT
	for k := range tC.Data {
		tC.Data[k] = units.KtoC(tC.Data[k])
	}
	fmt.Print(vis.ASCIIHeatmap(tC, vis.HeatmapOptions{Unit: "C", FlipY: true}))
	fmt.Println("\n(the four bright columns are the stacked core pairs; the cool")
	fmt.Println("center is the eDRAM L3 powered by the flow cells themselves)")
}
