// Failures: robustness studies on the integrated system — channel
// clogging over hot and cold regions (thermal + electrical impact),
// manufacturing tolerance Monte Carlo, and header maldistribution.
// The architecture's saving grace is parallelism: 88 channels average
// out variation, survivors inherit a clog's flow, and only clogs over
// the cores actually hurt.
package main

import (
	"fmt"
	"log"

	"bright/internal/experiments"
)

func main() {
	fmt.Println("failure & robustness studies on the Table II array")
	fmt.Println()

	e11, err := experiments.E11Clogging()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("channel clogging (pump holds total flow):")
	fmt.Println("   clogged  location   peak [C]   array [A]")
	for _, r := range e11.Rows {
		fmt.Printf("   %7d  %-8s   %8.2f   %9.2f\n", r.Clogged, r.Location, r.PeakC, r.ArrayA)
	}
	fmt.Println()

	e9, err := experiments.E9Variation()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("manufacturing tolerance (5%% per channel, %d realizations):\n", e9.Samples)
	fmt.Printf("   array current %.3f +- %.3f A (nominal %.3f, worst %.3f, 5th pct %.3f)\n\n",
		e9.MeanA, e9.StdA, e9.NominalA, e9.WorstA, e9.P05A)

	e15, err := experiments.E15Manifold()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("header maldistribution:")
	fmt.Println("   arrangement   flow spread   peak [C]   array [A]")
	for _, r := range e15.Rows {
		fmt.Printf("   %-11s   %9.1f%%   %8.2f   %9.3f\n",
			r.Arrangement, r.MaldistributionPct, r.PeakC, r.ArrayA)
	}
	fmt.Println()
	fmt.Println("takeaways: spare cooling margin over the cores matters most; the")
	fmt.Println("electrochemistry forgives flow imbalance (km ~ Q^(1/3)); use Z-type")
	fmt.Println("headers.")
}
