// Failures: robustness studies on the integrated system — transient
// fault injection through the streaming digital twin (a wearing pump
// and clogged microchannels, watched frame by frame as the thermal and
// electrical state responds), manufacturing tolerance Monte Carlo, and
// header maldistribution. The architecture's saving grace is
// parallelism: 88 channels average out variation, survivors inherit a
// clog's flow, and only faults that starve the cores actually hurt.
package main

import (
	"context"
	"errors"
	"fmt"
	"log"
	"time"

	"bright/internal/experiments"
	"bright/internal/stream"
)

// runScenario drives one canned fault scenario of the streaming
// digital-twin library synchronously (a manual session stepped by
// Advance, no HTTP in between) and prints every strideth frame, so the
// fault's onset and the system's settling are visible as a time series.
func runScenario(m *stream.Manager, scenario string, stride int) error {
	manual := false
	s, err := m.Create(stream.Spec{Scenario: scenario, Auto: &manual})
	if err != nil {
		return err
	}
	fmt.Printf("%s (streamed transient, every %d frames):\n", scenario, stride)
	fmt.Println("   t [ms]   flow [ml/min]   scale   peak [C]   array [A]   net [W]")
	for {
		n, f, err := s.Advance(context.Background(), stride)
		if err != nil {
			if errors.Is(err, stream.ErrCompleted) {
				break
			}
			return err
		}
		if n == 0 || f == nil {
			break
		}
		fmt.Printf("   %6.1f   %13.1f   %5.2f   %8.2f   %9.2f   %7.2f\n",
			f.TimeS*1e3, f.FlowMLMin, f.FlowScale, f.PeakTempC, f.ArrayCurrentA, f.NetGainW)
	}
	fmt.Println()
	return nil
}

func main() {
	fmt.Println("failure & robustness studies on the Table II array")
	fmt.Println()

	// Transient fault injection: the stream package's fault library
	// scales the delivered flow on a schedule while the coupled
	// electro-thermal model steps; the pump-degradation scenario ramps a
	// wearing pump down to 35% head, channel-clog blocks a third of the
	// microchannels at t=50 ms under a bursty load.
	mgr := stream.NewManager(stream.Options{MaxSessions: 2})
	for _, scenario := range []string{"pump-degradation", "channel-clog"} {
		if err := runScenario(mgr, scenario, 10); err != nil {
			log.Fatal(err)
		}
	}
	shutdownCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	//lint:ignore errignore best-effort teardown of a finished example
	mgr.Shutdown(shutdownCtx)
	cancel()

	e9, err := experiments.E9Variation()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("manufacturing tolerance (5%% per channel, %d realizations):\n", e9.Samples)
	fmt.Printf("   array current %.3f +- %.3f A (nominal %.3f, worst %.3f, 5th pct %.3f)\n\n",
		e9.MeanA, e9.StdA, e9.NominalA, e9.WorstA, e9.P05A)

	e15, err := experiments.E15Manifold()
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("header maldistribution:")
	fmt.Println("   arrangement   flow spread   peak [C]   array [A]")
	for _, r := range e15.Rows {
		fmt.Printf("   %-11s   %9.1f%%   %8.2f   %9.3f\n",
			r.Arrangement, r.MaldistributionPct, r.PeakC, r.ArrayA)
	}
	fmt.Println()
	fmt.Println("takeaways: spare cooling margin over the cores matters most; the")
	fmt.Println("electrochemistry forgives flow imbalance (km ~ Q^(1/3)); use Z-type")
	fmt.Println("headers.")
}
