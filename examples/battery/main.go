// Battery: the secondary-battery view of the flow-cell array (paper
// Section II: "redox flow cells are a type of secondary battery which
// stores energy in the electrolytes"). Discharges a small electrolyte
// reservoir through the POWER7+ array at the 1 V rail, showing the
// state-of-charge, current and OCV trajectories, then the round-trip
// voltage efficiency of the chemistry at 50% SOC.
package main

import (
	"fmt"
	"log"

	"bright/internal/flowcell"
)

func main() {
	a := flowcell.Power7Array()
	const volume = 5e-5 // 50 ml per side
	r, err := flowcell.NewReservoir(a, volume)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("reservoir: %.0f ml per side, %.2f Ah theoretical\n",
		volume*1e6, r.TheoreticalCapacityAh(1))
	res, err := r.DischargeConstantVoltage(a, 1.0, 10, 0.1, 1_000_000)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("\nconstant-voltage discharge at 1.00 V:")
	fmt.Println("   t [s]    SOC     I [A]    OCV [V]")
	step := len(res.Points) / 10
	if step == 0 {
		step = 1
	}
	for k := 0; k < len(res.Points); k += step {
		p := res.Points[k]
		fmt.Printf("   %5.0f   %.3f   %6.3f   %6.3f\n", p.TimeS, p.SOC, p.CurrentA, p.OCV)
	}
	fmt.Printf("\ndelivered %.2f Ah / %.2f Wh over %.0f s (%.1f Wh per liter of electrolyte)\n",
		res.CapacityAh, res.EnergyWh, res.DurationS, res.EnergyDensityWhPerL)

	fmt.Println("\nround-trip voltage efficiency at 50% SOC:")
	fmt.Println("   I [A]    V_dis    V_chg    eff")
	pts, err := a.Cell.RoundTripEfficiency(0.5, 8, 0.85)
	if err != nil {
		log.Fatal(err)
	}
	for _, p := range pts {
		fmt.Printf("   %5.3f   %6.3f   %6.3f   %.3f\n",
			p.Current, p.DischargeVoltage, p.ChargeVoltage, p.Efficiency)
	}
	fmt.Println("\nthe array is a battery whose 'tank' scales independently of its")
	fmt.Println("'engine' — the property the paper borrows from grid-scale storage.")
}
