// Stack3d: the paper's outlook — "to allow a full electrochemical power
// supply of chip stacks" — exercised on a two-tier 3D stack: two
// POWER7+-class dies, each with its own interlayer microchannel array.
// Compares the single-die and stacked thermal states and shows the
// per-tier temperature maps.
package main

import (
	"fmt"
	"log"

	"bright/internal/floorplan"
	"bright/internal/thermal"
	"bright/internal/units"
	"bright/internal/vis"
)

func main() {
	f := floorplan.Power7()
	spec := thermal.Power7ChannelSpec(units.MLPerMinToM3PerS(676), units.CtoK(27), thermal.VanadiumCoolant())

	single := thermal.Power7Problem(676, units.CtoK(27), 0)
	solSingle, err := thermal.Solve(single)
	if err != nil {
		log.Fatal(err)
	}

	stacked := &thermal.Problem{
		DieWidth:  f.Width,
		DieHeight: f.Height,
		Stack:     thermal.Power7Stack3D(spec),
	}
	stacked.Power = f.Rasterize(stacked.Grid(), floorplan.Power7FullLoad())
	solStack, err := thermal.Solve(stacked)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("single die:  %.1f W, peak %.1f C\n",
		solSingle.TotalPower, units.KtoC(solSingle.PeakT))
	fmt.Printf("2-tier stack: %.1f W, peak %.1f C (+%.1f K for double the compute)\n\n",
		solStack.TotalPower, units.KtoC(solStack.PeakT),
		solStack.PeakT-solSingle.PeakT)

	for tier, field := range solStack.TierActiveT {
		tC := field
		for k := range tC.Data {
			tC.Data[k] = units.KtoC(tC.Data[k])
		}
		fmt.Print(vis.ASCIIHeatmap(tC, vis.HeatmapOptions{
			Title:   fmt.Sprintf("tier %d active plane (bright = hot)", tier),
			Unit:    "C",
			FlipY:   true,
			MaxCols: 60,
		}))
		fmt.Println()
	}
	fmt.Println("each tier keeps its own coolant layer, so stacking costs little —")
	fmt.Println("the interlayer-cooling argument of Brunschwiler et al. that the")
	fmt.Println("paper builds on.")
}
