// Designspace: explore channel geometries around the paper's Table II
// point and rank manufacturable designs by net electric power (array
// output minus pumping), under thermal, etch-aspect, wall-thickness and
// pump-budget constraints. Answers the outlook's question: how far can
// geometry alone push the electrochemical power density?
package main

import (
	"fmt"
	"log"

	"bright/internal/design"
)

func main() {
	cands := append(design.DefaultGrid(), design.TableII())
	evs, err := design.Explore(cands, 676, 27, 1.0, design.DefaultConstraints())
	if err != nil {
		log.Fatal(err)
	}
	fmt.Println("design space at 676 ml/min, 27 C inlet, 1.0 V rail")
	fmt.Println("(channels span the 21.34 mm die; wall >= 50 um, aspect <= 4, peak <= 85 C)")
	fmt.Println()
	fmt.Println("   geometry                      ch     I@1V    pump    peak     net")
	for _, e := range evs {
		if !e.Feasible {
			fmt.Printf("   %-28s  --  rejected: %s\n", e.Candidate, e.Reason)
			continue
		}
		marker := "  "
		if e.Candidate == design.TableII() {
			marker = "<- Table II"
		}
		fmt.Printf("   %-28s %4d  %5.2f A  %5.2f W  %5.1f C  %6.2f W %s\n",
			e.Candidate, e.NChannels, e.CurrentAt1V, e.PumpPowerW, e.PeakTempC, e.NetPowerW, marker)
	}
	best := evs[0]
	fmt.Printf("\nbest: %s -> %.1f W net. Deeper, narrower, denser channels add\n",
		best.Candidate, best.NetPowerW)
	fmt.Println("electrode area faster than they add friction — about a 2x gain before")
	fmt.Println("the etch-aspect limit; the outlook's remaining 10-50x must come from")
	fmt.Println("the electrochemistry itself.")
}
