// Validation: reproduce the paper's Fig. 3 — polarization curves of the
// Kjeang et al. 2007 membraneless vanadium cell at four flow rates —
// with both solver paths of the library (the fast Leveque-correlation
// path and the finite-volume field path that replaces COMSOL), and show
// that the limiting current grows with the cube root of the flow rate.
package main

import (
	"fmt"
	"log"

	"bright"
)

func main() {
	fmt.Println("Fig. 3 — Kjeang validation cell, V vs current density")
	fmt.Println()
	for _, q := range []float64{2.5, 10, 60, 300} {
		corr := bright.KjeangCell(q)
		fvm := bright.KjeangCell(q)
		fvm.Path = bright.PathFVM

		curve, err := corr.Polarize(8, 0.9)
		if err != nil {
			log.Fatal(err)
		}
		iL := corr.LimitingCurrent() / corr.GeometricElectrodeArea() * 0.1 // mA/cm2
		fmt.Printf("flow %5.1f uL/min  (limiting ~%.0f mA/cm2)\n", q, iL)
		fmt.Println("   i [mA/cm2]   V corr [V]   V fvm [V]")
		for _, op := range curve {
			// The FVM path resolves local downstream depletion, so its
			// limit sits slightly below the averaged correlation limit;
			// points beyond it are marked transport-limited.
			fvmV := "  (limited)"
			if opF, err := fvm.VoltageAtCurrent(op.Current); err == nil {
				fvmV = fmt.Sprintf("%9.3f", opF.Voltage)
			}
			fmt.Printf("   %9.2f   %9.3f   %s\n",
				op.CurrentDensity*0.1, op.Voltage, fvmV)
		}
		fmt.Println()
	}
	fmt.Println("note how the curves nest: more flow -> thinner boundary layers ->")
	fmt.Println("higher limiting current, scaling as Q^(1/3) (Leveque).")
}
