package bright

import (
	"bright/internal/cosim"
	"bright/internal/design"
	"bright/internal/flowcell"
	"bright/internal/workload"
)

// Reservoir tracks an electrolyte inventory for discharge studies (the
// secondary-battery view of Section II).
type Reservoir = flowcell.Reservoir

// DischargeResult summarizes a constant-voltage discharge.
type DischargeResult = flowcell.DischargeResult

// NewReservoir creates a per-side electrolyte reservoir (m3) holding
// the array's inlet state.
func NewReservoir(a *Array, volumeM3 float64) (*Reservoir, error) {
	return flowcell.NewReservoir(a, volumeM3)
}

// RoundTripPoint is one current level of a charge/discharge efficiency
// sweep.
type RoundTripPoint = flowcell.RoundTripPoint

// SeriesStack groups an array's channels electrically in series with a
// manifold shunt-current ladder model.
type SeriesStack = flowcell.SeriesStack

// StackResult is a solved series-stack operating point.
type StackResult = flowcell.StackResult

// DefaultShuntResistances returns representative channel-feed and
// manifold-segment ionic resistances for the Table II geometry.
func DefaultShuntResistances() (channel, manifold float64) {
	return flowcell.DefaultShuntResistances()
}

// VariationResult summarizes a manufacturing-tolerance Monte Carlo.
type VariationResult = flowcell.VariationResult

// DesignCandidate is one channel geometry for the design explorer.
type DesignCandidate = design.Candidate

// DesignConstraints bound feasibility in the design exploration.
type DesignConstraints = design.Constraints

// DesignEvaluation is one scored design point.
type DesignEvaluation = design.Evaluation

// ExploreDesigns evaluates candidate channel geometries at the given
// flow (ml/min), inlet (C) and rail voltage, ranked by net power.
func ExploreDesigns(candidates []DesignCandidate, flowMLMin, inletC, voltage float64, cons DesignConstraints) ([]DesignEvaluation, error) {
	return design.Explore(candidates, flowMLMin, inletC, voltage, cons)
}

// DefaultDesignGrid returns the practical sweep around the Table II
// point; DefaultDesignConstraints the manufacturability limits.
func DefaultDesignGrid() []DesignCandidate        { return design.DefaultGrid() }
func DefaultDesignConstraints() DesignConstraints { return design.DefaultConstraints() }

// TableIIDesign returns the paper's channel geometry as a candidate.
func TableIIDesign() DesignCandidate { return design.TableII() }

// WorkloadTrace is a piecewise-constant utilization schedule.
type WorkloadTrace = workload.Trace

// BurstWorkload returns the race-to-idle trace: full activity for
// duty*period, idle for the rest.
func BurstWorkload(period, duty float64) *WorkloadTrace { return workload.Burst(period, duty) }

// SteadyWorkload returns a single-phase trace at uniform utilization.
func SteadyWorkload(util, duration float64) *WorkloadTrace {
	return workload.Steady(util, duration)
}

// ScenarioConfig drives a transient workload co-simulation.
type ScenarioConfig = cosim.ScenarioConfig

// ScenarioResult is a completed workload run.
type ScenarioResult = cosim.ScenarioResult

// RunWorkloadScenario plays a utilization trace against the transient
// thermal model with quasi-static electrochemistry.
func RunWorkloadScenario(cfg ScenarioConfig) (*ScenarioResult, error) {
	return cosim.RunWorkload(cfg)
}

// ThermalCapResult is the output of the thermal-capping governor.
type ThermalCapResult = cosim.ThermalCapResult

// ThermalCap returns the largest chip load fraction sustainable at the
// given coolant flow (ml/min) and inlet (C) without exceeding limitC.
func ThermalCap(flowMLMin, inletC, limitC float64) (*ThermalCapResult, error) {
	return cosim.ThermalCap(flowMLMin, inletC, limitC)
}
