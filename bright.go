// Package bright is the public API of the Bright Silicon library: a
// from-scratch Go reproduction of "Integrated Microfluidic Power
// Generation and Cooling for Bright Silicon MPSoCs" (Sabry, Sridhar,
// Atienza, Ruch, Michel — DATE 2014).
//
// The library models membraneless co-laminar vanadium redox flow cells
// etched on top of an MPSoC die, delivering electric power to the chip's
// cache rails while cooling the whole die with the same fluid. It
// bundles every substrate the paper relies on, implemented from first
// principles on the standard library only:
//
//   - electrochemistry (Nernst, Butler-Volmer, vanadium couples with
//     Arrhenius temperature scaling) — the paper's Section II theory;
//   - laminar microchannel hydrodynamics and species transport, with
//     both Leveque/Graetz correlations and a finite-volume field solver
//     replacing the paper's COMSOL model;
//   - a single-cell and cell-array polarization solver (Fig. 3, Fig. 7);
//   - the IBM POWER7+ floorplan and an MNA power-grid solver for the
//     on-chip voltage map (Fig. 8);
//   - a 3D-ICE-style compact thermal model of the die with embedded
//     microchannel cooling (Fig. 9);
//   - hydraulics (pressure drop, pumping power) and the electro-thermal
//     co-simulation behind the paper's Section III-B sensitivity claims.
//
// Quick start:
//
//	sys, err := bright.NewSystem(bright.DefaultConfig())
//	if err != nil { ... }
//	rep, err := sys.Evaluate()
//	if err != nil { ... }
//	fmt.Println(rep.Summary())
//
// See the examples/ directory for runnable scenarios and EXPERIMENTS.md
// for the paper-versus-measured record of every table and figure.
package bright

import (
	"bright/internal/core"
	"bright/internal/cosim"
	"bright/internal/flowcell"
	"bright/internal/sim"
	"bright/internal/thermal"
	"bright/internal/units"
)

// Config parameterizes the integrated POWER7+ case study.
type Config = core.Config

// System is the integrated MPSoC + flow-cell-array + PDN + thermal
// model (the paper's Fig. 1).
type System = core.System

// Report is a fully evaluated system state with the headline quantities
// of every experiment.
type Report = core.Report

// DefaultConfig returns the paper's nominal operating point: 676 ml/min,
// 27 C inlet, 1.0 V cache rail, full chip load.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewSystem builds the integrated system at the given configuration.
func NewSystem(cfg Config) (*System, error) { return core.NewSystem(cfg) }

// Cell is a single co-laminar flow-cell channel.
type Cell = flowcell.Cell

// Array is a parallel-connected array of identical cells.
type Array = flowcell.Array

// OperatingPoint is one solved electrical state of a cell or array.
type OperatingPoint = flowcell.OperatingPoint

// PolarizationCurve is a swept V-I characteristic.
type PolarizationCurve = flowcell.PolarizationCurve

// SolverPath selects the mass-transfer model inside the cell solver.
type SolverPath = flowcell.SolverPath

// Solver path constants: the fast correlation path and the
// finite-volume field path (the COMSOL replacement).
const (
	PathCorrelation = flowcell.PathCorrelation
	PathFVM         = flowcell.PathFVM
)

// KjeangCell returns the Table I validation cell (Kjeang et al. 2007)
// at the given per-stream flow rate in uL/min.
func KjeangCell(flowULMin float64) *Cell { return flowcell.KjeangCell(flowULMin) }

// Power7Array returns the Table II 88-channel array at the nominal
// 676 ml/min and 300 K.
func Power7Array() *Array { return flowcell.Power7Array() }

// Power7ArrayAt returns the Table II array at a custom total flow
// (ml/min) and temperature (K).
func Power7ArrayAt(totalMLMin, temperatureK float64) *Array {
	return flowcell.Power7ArrayAt(totalMLMin, temperatureK)
}

// ThermalSolution is a solved temperature state of the die.
type ThermalSolution = thermal.Solution

// SolveThermal computes the POWER7+ thermal map at the given flow
// (ml/min), inlet temperature (C) and extra coolant heat (W).
func SolveThermal(flowMLMin, inletC, extraFluidHeatW float64) (*ThermalSolution, error) {
	return thermal.Solve(thermal.Power7Problem(flowMLMin, units.CtoK(inletC), extraFluidHeatW))
}

// CoSimConfig parameterizes a standalone electro-thermal co-simulation.
type CoSimConfig = cosim.Config

// CoSimResult is a converged co-simulation state.
type CoSimResult = cosim.Result

// RunCoSim executes the electro-thermal fixed-point loop.
func RunCoSim(cfg CoSimConfig) (*CoSimResult, error) { return cosim.Run(cfg) }

// CouplingGain runs a co-simulation against its isothermal reference
// and reports the temperature-coupling current/power gains (the
// paper's <=4% and ~23% numbers).
func CouplingGain(cfg CoSimConfig) (*cosim.Gain, error) { return cosim.CouplingGain(cfg) }

// Engine is the concurrent evaluation service behind the brightd
// daemon: a fixed worker pool over a bounded queue (ErrQueueFull
// backpressure), a canonical-key memoizing LRU cache with single-flight
// deduplication, and batched sweep jobs. See internal/sim.
type Engine = sim.Engine

// EngineOptions configures NewEngine; the zero value gives NumCPU
// workers, a 64-deep queue and a 256-entry cache.
type EngineOptions = sim.Options

// EngineStats is a snapshot of the engine's serving metrics.
type EngineStats = sim.Stats

// SweepSpec describes a batched design-space sweep (the cartesian
// product of its axis values over a base configuration).
type SweepSpec = sim.SweepSpec

// SweepJob is an asynchronous, pollable sweep submitted to an Engine.
type SweepJob = sim.Job

// ErrQueueFull is the engine's backpressure signal: the bounded job
// queue is at capacity and the request was shed, not queued.
var ErrQueueFull = sim.ErrQueueFull

// NewEngine builds and starts a concurrent evaluation engine; the
// worker pool is running on return. Stop it with Engine.Shutdown.
func NewEngine(opts EngineOptions) *Engine { return sim.New(opts) }

// CtoK converts Celsius to Kelvin (convenience re-export).
func CtoK(c float64) float64 { return units.CtoK(c) }

// KtoC converts Kelvin to Celsius (convenience re-export).
func KtoC(k float64) float64 { return units.KtoC(k) }
