# Developer/CI entry points. `make check` is the full gate: vet, build,
# and the test suite under the race detector (the sim engine is heavily
# concurrent — races there are correctness bugs, not style).

GO ?= go

.PHONY: check build vet test race test-short bench bench-serving

check: vet build race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

# Race-detected run of everything; use `make race PKG=./internal/sim/...`
# to scope it to the concurrent paths.
PKG ?= ./...
race:
	$(GO) test -race $(PKG)

test-short:
	$(GO) test -short ./...

bench:
	$(GO) test -bench . -benchmem ./...

# Serving-layer throughput baseline only (see BenchmarkEngineThroughput).
bench-serving:
	$(GO) test -run xxx -bench BenchmarkEngineThroughput -benchmem .
