# Developer/CI entry points. `make check` is the full gate, in order:
# gofmt (any file gofmt would rewrite fails), go vet, brightlint (the
# domain-aware analyzers in internal/lint: SI-unit literals, *Context
# propagation on serving paths, obs registration placement, discarded
# errors, goroutine lifecycle, lock hygiene, HTTP response lifecycle),
# the build, the serving tier under the race detector with the
# leakcheck goroutine-neutrality harness active (`race-all` — the sim
# engine, streaming sessions and cluster coordinator are heavily
# concurrent; races and leaked goroutines there are correctness bugs,
# not style), and the kernel escape guard. `make race` remains the
# full-tree race pass and `make fuzz` the fuzz smoke, both outside the
# default gate for time.

GO ?= go

.PHONY: check fmt-check build vet lint lint-fix-list test race race-all test-short fuzz bench bench-serving bench-compare escape-check

check: fmt-check vet lint build race-all escape-check

# Formatting gate: any file gofmt would rewrite fails the build.
fmt-check:
	@out=$$(gofmt -l .); \
	if [ -n "$$out" ]; then \
		echo "fmt-check: gofmt needed on:"; echo "$$out"; exit 1; \
	fi
	@echo fmt-check ok

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# Domain-aware static analysis (cmd/brightlint): exits nonzero on any
# finding. Deliberate cases are annotated in source with
# `//lint:ignore <analyzer> <reason>`.
lint:
	$(GO) run ./cmd/brightlint ./...

# Convenience view of the same findings grouped by analyzer with
# counts, for working through a backlog; never fails the build.
lint-fix-list:
	@$(GO) run ./cmd/brightlint -group ./... || true

test:
	$(GO) test ./...

# Race-detected run of everything; use `make race PKG=./internal/sim/...`
# to scope it to the concurrent paths. Race instrumentation is a
# 10-20x slowdown on small containers (the experiments package alone
# can exceed go test's default 10m budget on one core), so the gate
# raises the per-package timeout rather than skipping the heavy suites.
PKG ?= ./...
RACE_TIMEOUT ?= 30m
race:
	$(GO) test -race -timeout $(RACE_TIMEOUT) $(PKG)

# Race pass over the whole concurrent serving tier in one invocation
# (it replaced the old race-serving/race-stream/race-cluster trio): the
# metrics registry, the sim engine's workers and flight groups, the
# streaming session run loops and frame ring, the cluster coordinator's
# hedged requests and health/snapshot loops, and the brightd
# integration tests at the repo root. internal/sim, internal/stream and
# internal/cluster run under the leakcheck TestMain harness
# (internal/testutil/leakcheck), so this target also proves every
# goroutine those packages start dies with its owner — the runtime twin
# of the goroutinelife analyzer.
race-all:
	$(GO) test -race -timeout $(RACE_TIMEOUT) . ./internal/obs/... ./internal/sim/... ./internal/stream/... ./internal/cluster/... ./internal/testutil/...

test-short:
	$(GO) test -short ./...

# Fuzz smoke: a short bounded run of each fuzz target (Go's fuzzer
# accepts one -fuzz per invocation). FuzzCanonicalKey/FuzzChainKey pin
# the cache-key quantization contract; FuzzCacheSnapshotRestore throws
# arbitrary JSON at the snapshot-restore path brightd exposes over PUT
# /v1/cache/snapshot. Longer runs: bump FUZZTIME.
FUZZTIME ?= 10s
fuzz:
	$(GO) test -run xxx -fuzz FuzzCanonicalKey -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run xxx -fuzz FuzzChainKey -fuzztime $(FUZZTIME) ./internal/core
	$(GO) test -run xxx -fuzz FuzzCacheSnapshotRestore -fuzztime $(FUZZTIME) ./internal/sim
	$(GO) test -run xxx -fuzz FuzzSELLRoundTrip -fuzztime $(FUZZTIME) ./internal/num

# Full benchmark sweep over the numeric kernels, the thermal solver,
# the serving engine and the streaming-session stepper, folded into a
# machine-readable report ($(BENCH_OUT)): per-benchmark ns/op, B/op,
# allocs/op, the paired speedup rows (serial vs parallel kernels,
# Jacobi vs multigrid preconditioning, float64 vs float32 V-cycles,
# Jacobi vs Chebyshev smoothing, sequential vs block multi-RHS CG,
# CSR vs SELL-C-σ SpMV) and
# the streaming frames/s rows, stamped with the Go version and core
# count of the generating machine. The num suite runs -count 3 so the
# committed speedup rows are medians (see cmd/benchjson), not single
# samples of a drifting box. BENCH_PR2.json (pre-multigrid),
# BENCH_PR5.json (pre-streaming), BENCH_PR6.json (pre-mixed-precision)
# and BENCH_PR7.json (pre-SELL) are frozen baselines; do not overwrite
# them.
BENCH_OUT ?= BENCH_PR10.json
bench:
	$(GO) test -run xxx -bench . -count 3 -benchmem ./internal/num > /tmp/bench_num.txt
	$(GO) test -run xxx -bench . -benchmem ./internal/thermal > /tmp/bench_thermal.txt
	$(GO) test -run xxx -bench BenchmarkEngineThroughput -benchmem . > /tmp/bench_engine.txt
	$(GO) test -run xxx -bench BenchmarkTransientStepping -benchmem ./internal/stream > /tmp/bench_stream.txt
	$(GO) run ./cmd/benchjson -o $(BENCH_OUT) /tmp/bench_num.txt /tmp/bench_thermal.txt /tmp/bench_engine.txt /tmp/bench_stream.txt
	@echo wrote $(BENCH_OUT)

# Serving-layer throughput baseline only (see BenchmarkEngineThroughput).
bench-serving:
	$(GO) test -run xxx -bench BenchmarkEngineThroughput -benchmem .

# Solver regression gate: runs the paired preconditioner benchmarks
# (BenchmarkCGPoisson64x64, BenchmarkCGPoisson128x128, BenchmarkCGStack3D
# — each a /jacobi vs /mg couple) plus the mixed-precision
# (BenchmarkMGCG512x512F32: /f64 vs /f32 on the 512-class grid),
# Chebyshev-smoothing (BenchmarkMGCGStack128x4Cheby: /jacobi-smooth vs
# /cheby on the stacked-die operator) and block multi-RHS
# (BenchmarkBlockCG128x128: /seq vs /block, gated on the deterministic
# rows/op metric) couples, plus the SELL-C-σ layout couples
# (BenchmarkSpMV*: /csr vs /sell on the 256²/512²/stacked-die
# operators), and fails if any optimized path drops below 1.0x its
# baseline, or if any pair goes missing. -count 3 lets benchjson gate
# on per-benchmark medians, so a CPU-frequency dip on a shared box
# cannot flake a timing ratio.
bench-compare:
	$(GO) test -run xxx -bench 'BenchmarkCGPoisson|BenchmarkCGStack3D|BenchmarkMGCG|BenchmarkBlockCG|BenchmarkSpMV' -count 3 -benchmem ./internal/num > /tmp/bench_mg.txt
	$(GO) run ./cmd/benchjson -min-mg-speedup 1.0 -min-speedup 1.0 -o /dev/null /tmp/bench_mg.txt

# Static allocation guard for the kernel hot paths. In
# internal/num/parallel.go the only allowed heap escapes are the
# one-time pool allocations (the parRun descriptor and its partials
# buffer built in sync.Pool.New); in internal/num/csr32.go only the
# setup-time mirror construction in NewCSR32 may allocate — the float32
# SpMV itself must not; in internal/num/sellcs.go only the SELL-C-σ
# constructors (NewSELLCS/newSELLCS32, run once at solver setup) may
# allocate — the sliced kernels' accumulators must stay on the stack.
# Anything else — a closure capturing operands, a descriptor escaping
# per call — would put an allocation on every kernel op and break the
# zero-allocs/op solve loop, so it fails the gate. The dynamic twin of
# this guard is TestKrylovWorkspaceZeroAlloc.
escape-check:
	@out=$$($(GO) build -gcflags=-m ./internal/num 2>&1 \
		| grep -E 'parallel\.go|csr32\.go|sellcs\.go' \
		| grep -E 'escapes to heap|moved to heap' \
		| grep -vE 'new\(parRun\)|make\(\[\]float64, 2\*maxKernelChunks\)|make\(\[\]float64, 128\)|&CSR32\{\.\.\.\}|make\(\[\]int32, len\(a\.ColIdx\)\)|make\(\[\]float32, len\(a\.Val\)\)|make\(\[\]int32, rows\)|make\(\[\]int, nSlices \+ 1\)|make\(\[\]int32, padded\)|make\(\[\]float64, padded\)|make\(\[\]float32, len\(s\.Val\)\)|&SELLCS\{\.\.\.\}|&SELLCS32\{\.\.\.\}'); \
	if [ -n "$$out" ]; then \
		echo "escape-check: unexpected heap escapes in the kernel hot path:"; \
		echo "$$out"; exit 1; \
	fi
	@echo escape-check ok
