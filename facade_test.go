package bright_test

import (
	"context"
	"math"
	"testing"

	"bright"
)

func TestPublicEngineAPI(t *testing.T) {
	e := bright.NewEngine(bright.EngineOptions{
		Workers: 2,
		Solver: func(ctx context.Context, cfg bright.Config) (*bright.Report, error) {
			sys, err := bright.NewSystem(cfg)
			if err != nil {
				return nil, err
			}
			// A facade-level smoke test must stay fast: return a report
			// that skips the co-simulation but exercises the cache path.
			return &bright.Report{Config: sys.Config}, nil
		},
	})
	defer e.Shutdown(context.Background())
	rep, err := e.Evaluate(context.Background(), bright.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	rep2, err := e.Evaluate(context.Background(), bright.DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep2 != rep {
		t.Fatal("second identical request was not a cache hit")
	}
	st := e.Stats()
	if st.CacheHits != 1 || st.Solves != 1 {
		t.Fatalf("stats %+v, want 1 hit / 1 solve", st)
	}
	if bright.ErrQueueFull == nil {
		t.Fatal("backpressure sentinel must be exported")
	}
}

func TestPublicBatteryAPI(t *testing.T) {
	a := bright.Power7Array()
	r, err := bright.NewReservoir(a, 2e-5)
	if err != nil {
		t.Fatal(err)
	}
	res, err := r.DischargeConstantVoltage(a, 1.0, 10, 0.2, 100000)
	if err != nil {
		t.Fatal(err)
	}
	if res.CapacityAh <= 0 || res.EnergyWh <= 0 {
		t.Fatalf("degenerate discharge %+v", res)
	}
}

func TestPublicChargingAPI(t *testing.T) {
	half, err := bright.KjeangCell(60).AtStateOfCharge(0.5)
	if err != nil {
		t.Fatal(err)
	}
	pts, err := half.RoundTripEfficiency(0.5, 5, 0.8)
	if err != nil {
		t.Fatal(err)
	}
	if len(pts) != 5 || pts[0].Efficiency <= pts[4].Efficiency {
		t.Fatalf("round trip points %v", pts)
	}
}

func TestPublicSeriesStackAPI(t *testing.T) {
	rch, rm := bright.DefaultShuntResistances()
	s := &bright.SeriesStack{
		Array:                     bright.Power7Array(),
		SeriesGroups:              4,
		ChannelShuntResistance:    rch,
		ManifoldSegmentResistance: rm,
	}
	res, err := s.Solve(4.0)
	if err != nil {
		t.Fatal(err)
	}
	if res.ShuntLossPct <= 0 || res.DeliveredW <= 0 {
		t.Fatalf("stack result %+v", res)
	}
}

func TestPublicVariationAPI(t *testing.T) {
	res, err := bright.Power7Array().MonteCarloVariation(1.0, 0.05, 10, 1)
	if err != nil {
		t.Fatal(err)
	}
	if res.StdA <= 0 || res.MeanA <= 0 {
		t.Fatalf("variation result %+v", res)
	}
}

func TestPublicDesignAPI(t *testing.T) {
	evs, err := bright.ExploreDesigns(
		[]bright.DesignCandidate{bright.TableIIDesign()},
		676, 27, 1.0, bright.DefaultDesignConstraints())
	if err != nil {
		t.Fatal(err)
	}
	if len(evs) != 1 || !evs[0].Feasible {
		t.Fatalf("design evaluation %+v", evs)
	}
	if len(bright.DefaultDesignGrid()) == 0 {
		t.Fatal("empty default grid")
	}
}

func TestPublicWorkloadAPI(t *testing.T) {
	tr := bright.BurstWorkload(1.0, 0.25)
	if err := tr.Validate(); err != nil {
		t.Fatal(err)
	}
	if math.Abs(tr.TotalDuration()-1.0) > 1e-12 {
		t.Fatal("burst duration")
	}
	if bright.SteadyWorkload(0.5, 3).TotalDuration() != 3 {
		t.Fatal("steady duration")
	}
}
